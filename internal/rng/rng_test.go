package rng

import (
	"math"
	"testing"

	"beqos/internal/dist"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7, 11), New(7, 11)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := New(7, 12)
	same := true
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should give different streams")
	}
}

func TestExpMoments(t *testing.T) {
	s := New(1, 2)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		x := s.Exp(5)
		sum += x
		sq += x * x
	}
	mean := sum / n
	varr := sq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("exp mean = %v, want 5", mean)
	}
	if math.Abs(varr-25) > 0.8 {
		t.Errorf("exp variance = %v, want 25", varr)
	}
}

func TestPoissonMoments(t *testing.T) {
	s := New(3, 4)
	for _, mean := range []float64{0.5, 7, 100} {
		const n = 100000
		var sum, sq float64
		for i := 0; i < n; i++ {
			x := float64(s.Poisson(mean))
			sum += x
			sq += x * x
		}
		m := sum / n
		v := sq/n - m*m
		if math.Abs(m-mean) > 0.03*mean+0.03 {
			t.Errorf("poisson(%g) mean = %v", mean, m)
		}
		if math.Abs(v-mean) > 0.05*mean+0.05 {
			t.Errorf("poisson(%g) variance = %v, want ≈ mean", mean, v)
		}
	}
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Error("nonpositive mean should give 0")
	}
}

func TestParetoTail(t *testing.T) {
	s := New(5, 6)
	const n = 200000
	xm, alpha := 2.0, 2.5
	count := 0
	var min float64 = math.Inf(1)
	for i := 0; i < n; i++ {
		x := s.Pareto(xm, alpha)
		if x < min {
			min = x
		}
		if x > 4 {
			count++
		}
	}
	if min < xm {
		t.Errorf("Pareto below scale: %v", min)
	}
	// P(X > 4) = (2/4)^2.5 ≈ 0.1768.
	got := float64(count) / n
	if want := math.Pow(0.5, alpha); math.Abs(got-want) > 0.006 {
		t.Errorf("tail prob = %v, want %v", got, want)
	}
}

func TestDiscreteSamplerMatchesPMF(t *testing.T) {
	d, err := dist.NewPoisson(40)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDiscreteSampler(d)
	if err != nil {
		t.Fatal(err)
	}
	s := New(9, 10)
	const n = 300000
	counts := make(map[int]int)
	var sum float64
	for i := 0; i < n; i++ {
		k := ds.Sample(s)
		counts[k]++
		sum += float64(k)
	}
	if mean := sum / n; math.Abs(mean-40) > 0.2 {
		t.Errorf("sampled mean = %v, want 40", mean)
	}
	// Spot-check a few PMF values.
	for _, k := range []int{30, 40, 50} {
		got := float64(counts[k]) / n
		want := d.PMF(k)
		if math.Abs(got-want) > 0.15*want+1e-4 {
			t.Errorf("P(%d): sampled %v vs exact %v", k, got, want)
		}
	}
}

func TestDiscreteSamplerHeavyTail(t *testing.T) {
	d, err := dist.NewAlgebraicMean(3, 50)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDiscreteSampler(d)
	if err != nil {
		t.Fatal(err)
	}
	s := New(11, 12)
	const n = 200000
	over := 0
	for i := 0; i < n; i++ {
		if ds.Sample(s) > 500 {
			over++
		}
	}
	got := float64(over) / n
	want := d.TailProb(500)
	if math.Abs(got-want) > 0.2*want+2e-4 {
		t.Errorf("tail P(K>500): sampled %v vs exact %v", got, want)
	}
}

func TestDiscreteSamplerNil(t *testing.T) {
	if _, err := NewDiscreteSampler(nil); err == nil {
		t.Error("nil distribution should fail")
	}
}
