package rng

import (
	"math"
	"testing"
)

// moments returns the empirical mean and variance of n draws.
func moments(n int, draw func() float64) (mean, variance float64) {
	var sum float64
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = draw()
		sum += xs[i]
	}
	mean = sum / float64(n)
	var sq float64
	for _, x := range xs {
		sq += (x - mean) * (x - mean)
	}
	return mean, sq / float64(n-1)
}

func TestNormalMoments(t *testing.T) {
	s := New(11, 13)
	mean, v := moments(200000, func() float64 { return s.Normal(3, 2) })
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("Normal mean = %g, want ≈ 3", mean)
	}
	if math.Abs(v-4) > 0.2 {
		t.Fatalf("Normal variance = %g, want ≈ 4", v)
	}
}

func TestLogNormalMoments(t *testing.T) {
	s := New(17, 19)
	// mu = ln(2) - 0.5²/2 gives mean 2.
	mu := math.Log(2) - 0.125
	mean, _ := moments(200000, func() float64 { return s.LogNormal(mu, 0.5) })
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("LogNormal mean = %g, want ≈ 2", mean)
	}
	for i := 0; i < 1000; i++ {
		if x := s.LogNormal(mu, 0.5); !(x > 0) {
			t.Fatalf("LogNormal produced non-positive %g", x)
		}
	}
}

func TestGammaMoments(t *testing.T) {
	cases := []struct{ shape, scale float64 }{
		{4, 0.5},   // squeeze path, shape > 1
		{1, 2},     // exponential special case
		{0.25, 3},  // boost path, shape < 1
		{0.04, 10}, // extreme low shape (cv=5 renewal regime)
	}
	s := New(23, 29)
	for _, tc := range cases {
		wantMean := tc.shape * tc.scale
		wantVar := tc.shape * tc.scale * tc.scale
		mean, v := moments(300000, func() float64 { return s.Gamma(tc.shape, tc.scale) })
		if math.Abs(mean-wantMean) > 0.05*wantMean+0.01 {
			t.Errorf("Gamma(%g,%g) mean = %g, want ≈ %g", tc.shape, tc.scale, mean, wantMean)
		}
		if math.Abs(v-wantVar) > 0.1*wantVar+0.02 {
			t.Errorf("Gamma(%g,%g) variance = %g, want ≈ %g", tc.shape, tc.scale, v, wantVar)
		}
	}
	for i := 0; i < 10000; i++ {
		if x := s.Gamma(0.04, 10); !(x >= 0) {
			t.Fatalf("Gamma produced negative %g", x)
		}
	}
}

func TestSamplersDeterministic(t *testing.T) {
	a, b := New(5, 7), New(5, 7)
	for i := 0; i < 1000; i++ {
		if x, y := a.Gamma(0.7, 2), b.Gamma(0.7, 2); x != y {
			t.Fatalf("Gamma draw %d differs: %g vs %g", i, x, y)
		}
		if x, y := a.LogNormal(0, 1), b.LogNormal(0, 1); x != y {
			t.Fatalf("LogNormal draw %d differs: %g vs %g", i, x, y)
		}
	}
}
