package sched_test

import (
	"fmt"
	"log"

	"beqos/internal/sched"
)

// Fair queueing holds a reserved flow at its share while an aggressor
// floods the link; FIFO does not.
func Example() {
	victim := sched.Source{Flow: 1, Rate: 0.25, PacketSize: 0.01}
	aggressor := sched.Source{Flow: 2, Rate: 4, PacketSize: 0.01}

	fifo, err := sched.RunLink(sched.NewFIFO(), 1, []sched.Source{victim, aggressor}, 100)
	if err != nil {
		log.Fatal(err)
	}
	fq := sched.NewSCFQ()
	if err := fq.SetWeight(1, 1); err != nil {
		log.Fatal(err)
	}
	if err := fq.SetWeight(2, 0.1); err != nil {
		log.Fatal(err)
	}
	fair, err := sched.RunLink(fq, 1, []sched.Source{victim, aggressor}, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FIFO victim throughput below 0.1: %v\n", fifo[1].Throughput < 0.1)
	fmt.Printf("SCFQ victim keeps its 0.25: %v\n", fair[1].Throughput > 0.23)
	// Output:
	// FIFO victim throughput below 0.1: true
	// SCFQ victim keeps its 0.25: true
}
