package sched

import "fmt"

// Source generates one flow's packet process for the link simulator.
type Source struct {
	// Flow is the flow ID.
	Flow int
	// Rate is the offered load in size units per unit time.
	Rate float64
	// PacketSize is the (fixed) packet size.
	PacketSize float64
	// Start and Stop bound the source's active interval.
	Start, Stop float64
}

// FlowStats reports one flow's realized service.
type FlowStats struct {
	// Offered is the total size the flow offered.
	Offered float64
	// Served is the total size the link served for the flow.
	Served float64
	// Throughput is Served divided by the measurement interval.
	Throughput float64
	// MaxDelay is the worst packet delay (service completion − arrival).
	MaxDelay float64
}

// cursor walks one source's deterministic packet process lazily — the
// simulator merges cursors on the fly instead of materializing and sorting
// every arrival up front, so a long horizon costs no memory.
type cursor struct {
	src      Source
	at       float64 // next arrival instant
	stop     float64
	interval float64
	stat     int // index into the per-flow stats table
}

// RunLink drives a scheduler on a link of the given capacity with the
// given packet sources until horizon, and reports per-flow statistics. The
// link serves one packet at a time at the capacity rate and is
// work-conserving: it idles only when the scheduler has no backlog.
func RunLink(s Scheduler, capacity float64, sources []Source, horizon float64) (map[int]FlowStats, error) {
	if !(capacity > 0) {
		return nil, fmt.Errorf("sched: capacity must be positive, got %g", capacity)
	}
	if !(horizon > 0) {
		return nil, fmt.Errorf("sched: horizon must be positive, got %g", horizon)
	}
	// One stats slot per flow ID (sources may share a flow); arrival ties
	// across sources resolve in source order, matching a stable sort of the
	// materialized processes.
	statIdx := make(map[int]int, len(sources))
	var flowIDs []int
	cursors := make([]cursor, 0, len(sources))
	for _, src := range sources {
		if !(src.Rate > 0) || !(src.PacketSize > 0) {
			return nil, fmt.Errorf("sched: source %d needs positive rate and packet size", src.Flow)
		}
		stop := src.Stop
		if stop <= 0 || stop > horizon {
			stop = horizon
		}
		si, ok := statIdx[src.Flow]
		if !ok {
			si = len(flowIDs)
			statIdx[src.Flow] = si
			flowIDs = append(flowIDs, src.Flow)
		}
		cursors = append(cursors, cursor{
			src:      src,
			at:       src.Start,
			stop:     stop,
			interval: src.PacketSize / src.Rate,
			stat:     si,
		})
	}
	offered := make([]float64, len(flowIDs))
	served := make([]float64, len(flowIDs))
	maxDelay := make([]float64, len(flowIDs))

	// nextCursor returns the cursor with the earliest pending arrival.
	nextCursor := func() *cursor {
		var best *cursor
		for i := range cursors {
			c := &cursors[i]
			if c.at >= c.stop {
				continue
			}
			if best == nil || c.at < best.at {
				best = c
			}
		}
		return best
	}

	now := 0.0
	for {
		// Admit every arrival at or before now.
		for {
			c := nextCursor()
			if c == nil || c.at > now {
				break
			}
			if err := s.Enqueue(Packet{Flow: c.src.Flow, Size: c.src.PacketSize, Arrival: c.at}); err != nil {
				return nil, err
			}
			offered[c.stat] += c.src.PacketSize
			c.at += c.interval
		}
		pkt, ok := s.Dequeue()
		if !ok {
			c := nextCursor()
			if c == nil {
				break
			}
			// Idle until the next arrival (work conservation).
			now = c.at
			continue
		}
		done := now + pkt.Size/capacity
		if done > horizon {
			break
		}
		now = done
		si := statIdx[pkt.Flow]
		served[si] += pkt.Size
		if d := done - pkt.Arrival; d > maxDelay[si] {
			maxDelay[si] = d
		}
	}
	// Account arrivals the loop never reached (e.g. backlog ended the run
	// early): Offered reflects the full offered process, as before.
	for i := range cursors {
		c := &cursors[i]
		for at := c.at; at < c.stop; at += c.interval {
			offered[c.stat] += c.src.PacketSize
		}
	}

	stats := make(map[int]FlowStats, len(flowIDs))
	for i, id := range flowIDs {
		stats[id] = FlowStats{
			Offered:    offered[i],
			Served:     served[i],
			Throughput: served[i] / horizon,
			MaxDelay:   maxDelay[i],
		}
	}
	return stats, nil
}
