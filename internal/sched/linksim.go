package sched

import (
	"fmt"
	"sort"
)

// Source generates one flow's packet process for the link simulator.
type Source struct {
	// Flow is the flow ID.
	Flow int
	// Rate is the offered load in size units per unit time.
	Rate float64
	// PacketSize is the (fixed) packet size.
	PacketSize float64
	// Start and Stop bound the source's active interval.
	Start, Stop float64
}

// FlowStats reports one flow's realized service.
type FlowStats struct {
	// Offered is the total size the flow offered.
	Offered float64
	// Served is the total size the link served for the flow.
	Served float64
	// Throughput is Served divided by the measurement interval.
	Throughput float64
	// MaxDelay is the worst packet delay (service completion − arrival).
	MaxDelay float64
}

// RunLink drives a scheduler on a link of the given capacity with the
// given packet sources until horizon, and reports per-flow statistics. The
// link serves one packet at a time at the capacity rate and is
// work-conserving: it idles only when the scheduler has no backlog.
func RunLink(s Scheduler, capacity float64, sources []Source, horizon float64) (map[int]FlowStats, error) {
	if !(capacity > 0) {
		return nil, fmt.Errorf("sched: capacity must be positive, got %g", capacity)
	}
	if !(horizon > 0) {
		return nil, fmt.Errorf("sched: horizon must be positive, got %g", horizon)
	}
	// Materialize all arrivals (deterministic fluid-like processes keep
	// the fairness measurements noise-free).
	var arrivals []Packet
	offered := make(map[int]float64)
	for _, src := range sources {
		if !(src.Rate > 0) || !(src.PacketSize > 0) {
			return nil, fmt.Errorf("sched: source %d needs positive rate and packet size", src.Flow)
		}
		stop := src.Stop
		if stop <= 0 || stop > horizon {
			stop = horizon
		}
		interval := src.PacketSize / src.Rate
		for at := src.Start; at < stop; at += interval {
			arrivals = append(arrivals, Packet{Flow: src.Flow, Size: src.PacketSize, Arrival: at})
			offered[src.Flow] += src.PacketSize
		}
	}
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].Arrival < arrivals[j].Arrival })

	stats := make(map[int]FlowStats)
	now := 0.0
	next := 0
	for {
		// Admit every arrival at or before now.
		for next < len(arrivals) && arrivals[next].Arrival <= now {
			if err := s.Enqueue(arrivals[next]); err != nil {
				return nil, err
			}
			next++
		}
		pkt, ok := s.Dequeue()
		if !ok {
			if next >= len(arrivals) {
				break
			}
			// Idle until the next arrival (work conservation).
			now = arrivals[next].Arrival
			continue
		}
		done := now + pkt.Size/capacity
		if done > horizon {
			break
		}
		now = done
		st := stats[pkt.Flow]
		st.Served += pkt.Size
		if d := done - pkt.Arrival; d > st.MaxDelay {
			st.MaxDelay = d
		}
		stats[pkt.Flow] = st
	}
	for flow, st := range stats {
		st.Offered = offered[flow]
		st.Throughput = st.Served / horizon
		stats[flow] = st
	}
	for flow, off := range offered {
		if _, ok := stats[flow]; !ok {
			stats[flow] = FlowStats{Offered: off}
		}
	}
	return stats, nil
}
