package sched

import (
	"sort"
	"testing"

	"beqos/internal/rng"
)

// TestFIFORingWraparound drives the ring through many interleaved
// enqueue/dequeue cycles against a plain-slice reference queue.
func TestFIFORingWraparound(t *testing.T) {
	f := NewFIFO()
	var ref []Packet
	src := rng.New(1, 2)
	next := 0
	for step := 0; step < 20000; step++ {
		if src.Float64() < 0.55 {
			next++
			p := Packet{Flow: next, Size: 1, Arrival: float64(step)}
			if err := f.Enqueue(p); err != nil {
				t.Fatal(err)
			}
			ref = append(ref, p)
		} else {
			got, ok := f.Dequeue()
			if len(ref) == 0 {
				if ok {
					t.Fatalf("step %d: dequeue from empty ring returned %+v", step, got)
				}
				continue
			}
			want := ref[0]
			ref = ref[1:]
			if !ok || got != want {
				t.Fatalf("step %d: got %+v, want %+v", step, got, want)
			}
		}
		if f.Backlog() != len(ref) {
			t.Fatalf("step %d: backlog %d, want %d", step, f.Backlog(), len(ref))
		}
	}
}

// TestFIFORingShrinks is the regression test for the unbounded head-slice
// growth: after a large backlog drains, the ring must hand memory back
// instead of pinning the high-water mark forever.
func TestFIFORingShrinks(t *testing.T) {
	f := NewFIFO()
	const burst = 1 << 16
	for i := 0; i < burst; i++ {
		if err := f.Enqueue(Packet{Flow: i, Size: 1}); err != nil {
			t.Fatal(err)
		}
	}
	peak := f.Cap()
	if peak < burst {
		t.Fatalf("ring capacity %d below backlog %d", peak, burst)
	}
	for i := 0; i < burst; i++ {
		if _, ok := f.Dequeue(); !ok {
			t.Fatalf("lost packet %d", i)
		}
	}
	if f.Cap() != fifoMinCap {
		t.Errorf("ring capacity after drain = %d, want the floor %d (peak was %d)", f.Cap(), fifoMinCap, peak)
	}
	// Still a working queue after shrinking.
	if err := f.Enqueue(Packet{Flow: 7, Size: 1}); err != nil {
		t.Fatal(err)
	}
	if p, ok := f.Dequeue(); !ok || p.Flow != 7 {
		t.Errorf("post-shrink dequeue = %+v, %v", p, ok)
	}
}

// refSCFQ is an order-only reference implementation: identical tag
// arithmetic, but a sorted slice instead of per-flow rings + heap.
type refSCFQ struct {
	weights map[int]float64
	lastF   map[int]float64
	v       float64
	seq     uint64
	q       []scfqItem
}

func newRefSCFQ() *refSCFQ {
	return &refSCFQ{weights: map[int]float64{}, lastF: map[int]float64{}}
}

func (r *refSCFQ) enqueue(p Packet) {
	w := r.weights[p.Flow]
	if w == 0 {
		w = 1
	}
	start := r.v
	if f := r.lastF[p.Flow]; f > start {
		start = f
	}
	finish := start + p.Size/w
	r.lastF[p.Flow] = finish
	r.seq++
	r.q = append(r.q, scfqItem{pkt: p, finish: finish, seq: r.seq})
}

func (r *refSCFQ) dequeue() (Packet, bool) {
	if len(r.q) == 0 {
		return Packet{}, false
	}
	sort.SliceStable(r.q, func(i, j int) bool {
		if r.q[i].finish != r.q[j].finish {
			return r.q[i].finish < r.q[j].finish
		}
		return r.q[i].seq < r.q[j].seq
	})
	it := r.q[0]
	r.q = r.q[1:]
	r.v = it.finish
	return it.pkt, true
}

// TestSCFQMatchesReferenceOrder drives the per-flow-ring + intrusive-heap
// SCFQ and the reference global-order implementation with an identical
// random workload (several flows, random sizes and weights, random
// enqueue/dequeue interleaving) and demands the exact same service order.
func TestSCFQMatchesReferenceOrder(t *testing.T) {
	s := NewSCFQ()
	ref := newRefSCFQ()
	src := rng.New(5, 9)
	weights := []float64{1, 2, 0.5, 3, 1.5}
	for flow, w := range weights {
		if err := s.SetWeight(flow, w); err != nil {
			t.Fatal(err)
		}
		ref.weights[flow] = w
	}
	for step := 0; step < 30000; step++ {
		if src.Float64() < 0.6 {
			p := Packet{
				Flow:    src.IntN(len(weights) + 2), // includes unweighted flows
				Size:    0.1 + src.Float64(),
				Arrival: float64(step),
			}
			if err := s.Enqueue(p); err != nil {
				t.Fatal(err)
			}
			ref.enqueue(p)
		} else {
			got, okGot := s.Dequeue()
			want, okWant := ref.dequeue()
			if okGot != okWant || got != want {
				t.Fatalf("step %d: scfq (%+v, %v) vs reference (%+v, %v)", step, got, okGot, want, okWant)
			}
		}
		if s.Backlog() != len(ref.q) {
			t.Fatalf("step %d: backlog %d, want %d", step, s.Backlog(), len(ref.q))
		}
	}
	// Drain both completely.
	for {
		got, okGot := s.Dequeue()
		want, okWant := ref.dequeue()
		if okGot != okWant || got != want {
			t.Fatalf("drain: scfq (%+v, %v) vs reference (%+v, %v)", got, okGot, want, okWant)
		}
		if !okGot {
			break
		}
	}
}

// TestSCFQZeroAllocSteadyState pins the 0 allocs/op contract for the SCFQ
// hot path once flow slots and rings have warmed up.
func TestSCFQZeroAllocSteadyState(t *testing.T) {
	s := NewSCFQ()
	for i := 0; i < 256; i++ {
		if err := s.Enqueue(Packet{Flow: i % 16, Size: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for {
		if _, ok := s.Dequeue(); !ok {
			break
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		i++
		if err := s.Enqueue(Packet{Flow: i % 16, Size: 1}); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Dequeue(); !ok {
			t.Fatal("unexpected empty queue")
		}
	})
	if allocs != 0 {
		t.Errorf("SCFQ enqueue+dequeue allocates %v/op, want 0", allocs)
	}
}

// TestFIFOZeroAllocSteadyState does the same for the best-effort baseline.
func TestFIFOZeroAllocSteadyState(t *testing.T) {
	f := NewFIFO()
	if err := f.Enqueue(Packet{Flow: 1, Size: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Dequeue(); !ok {
		t.Fatal("warmup dequeue failed")
	}
	allocs := testing.AllocsPerRun(2000, func() {
		if err := f.Enqueue(Packet{Flow: 1, Size: 1}); err != nil {
			t.Fatal(err)
		}
		if _, ok := f.Dequeue(); !ok {
			t.Fatal("unexpected empty queue")
		}
	})
	if allocs != 0 {
		t.Errorf("FIFO enqueue+dequeue allocates %v/op, want 0", allocs)
	}
}

// TestSCFQManyFlows exercises slot growth and the heap with a flow
// population far beyond the micro benchmarks.
func TestSCFQManyFlows(t *testing.T) {
	s := NewSCFQ()
	const flows = 1000
	for i := 0; i < flows; i++ {
		if err := s.Enqueue(Packet{Flow: i, Size: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Backlog() != flows {
		t.Fatalf("backlog = %d", s.Backlog())
	}
	seen := make(map[int]bool, flows)
	for i := 0; i < flows; i++ {
		p, ok := s.Dequeue()
		if !ok || seen[p.Flow] {
			t.Fatalf("dequeue %d: ok=%v flow=%d (dup=%v)", i, ok, p.Flow, seen[p.Flow])
		}
		seen[p.Flow] = true
	}
	if _, ok := s.Dequeue(); ok {
		t.Error("queue should be empty")
	}
}
