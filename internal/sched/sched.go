// Package sched implements the packet-scheduling substrate the paper's
// reservation-capable architecture presumes: admission control decides
// *who* gets in (internal/core, internal/resv), and a fair-queueing
// scheduler is what *enforces* each admitted flow's share on the wire. The
// paper's integrated-services context builds on generalized processor
// sharing (Parekh & Gallager, reference [10] in the paper); this package
// implements SCFQ — self-clocked fair queueing (Golestani) — a practical
// packet-by-packet approximation of GPS with the same long-run share
// guarantees, plus a FIFO scheduler as the best-effort baseline.
//
// The package-level simulator drives either scheduler with per-flow packet
// processes and measures realized throughput, so tests can verify the
// paper's premise directly: under overload, FIFO sharing collapses in
// proportion to the aggressor's demand, while fair queueing holds every
// admitted flow at its reserved share.
//
// Both schedulers are allocation-free in steady state: FIFO is a ring
// buffer (which also shrinks after large backlogs drain, so a burst cannot
// pin memory forever), and SCFQ keeps one packet ring per flow plus an
// intrusive 4-ary heap of backlogged flows keyed by head-packet finish
// tag — Enqueue and Dequeue are 0 allocs/op once the rings have warmed up.
package sched

import "fmt"

// Packet is one unit of work offered to the link.
type Packet struct {
	// Flow identifies the owning flow.
	Flow int
	// Size is the packet's service requirement (e.g. bits).
	Size float64
	// Arrival is the packet's arrival time.
	Arrival float64
}

// Scheduler selects the order in which queued packets are served.
type Scheduler interface {
	// Enqueue accepts a packet at its arrival time.
	Enqueue(p Packet) error
	// Dequeue pops the next packet to serve, or false when idle.
	Dequeue() (Packet, bool)
	// Backlog reports the number of queued packets.
	Backlog() int
}

// fifoMinCap is the smallest ring capacity FIFO keeps once allocated;
// shrinking below it would churn on ordinary traffic.
const fifoMinCap = 16

// FIFO is the best-effort baseline: a single shared queue, no isolation.
// It is a ring buffer: Enqueue and Dequeue are amortized O(1) and do not
// let the backing array grow without bound under sustained backlog — the
// ring halves itself whenever it is no more than a quarter full.
type FIFO struct {
	ring  []Packet
	head  int
	count int
}

// NewFIFO returns an empty FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Enqueue implements Scheduler.
func (f *FIFO) Enqueue(p Packet) error {
	if p.Size <= 0 {
		return fmt.Errorf("sched: packet size must be positive, got %g", p.Size)
	}
	if f.count == len(f.ring) {
		f.resize(max(2*len(f.ring), fifoMinCap))
	}
	f.ring[(f.head+f.count)%len(f.ring)] = p
	f.count++
	return nil
}

// Dequeue implements Scheduler.
func (f *FIFO) Dequeue() (Packet, bool) {
	if f.count == 0 {
		return Packet{}, false
	}
	p := f.ring[f.head]
	f.ring[f.head] = Packet{}
	f.head = (f.head + 1) % len(f.ring)
	f.count--
	if len(f.ring) > fifoMinCap && f.count <= len(f.ring)/4 {
		f.resize(max(len(f.ring)/2, fifoMinCap))
	}
	return p, true
}

// resize relocates the ring into a fresh array of the given capacity.
func (f *FIFO) resize(capacity int) {
	next := make([]Packet, capacity)
	for i := 0; i < f.count; i++ {
		next[i] = f.ring[(f.head+i)%len(f.ring)]
	}
	f.ring = next
	f.head = 0
}

// Backlog implements Scheduler.
func (f *FIFO) Backlog() int { return f.count }

// Cap reports the ring's current capacity (exported for the shrink test).
func (f *FIFO) Cap() int { return len(f.ring) }

// scfqItem is a queued packet with its SCFQ finish tag. seq preserves
// global FIFO order among equal tags.
type scfqItem struct {
	pkt    Packet
	finish float64
	seq    uint64
}

// scfqFlow is one flow's state: its weight, last finish tag, a ring buffer
// of queued packets (per-flow tags are strictly increasing, so the ring is
// already in service order), and its position in the backlog heap.
type scfqFlow struct {
	ring    []scfqItem
	head    int
	count   int
	weight  float64
	lastF   float64
	heapIdx int32 // index into SCFQ.heap, -1 when not backlogged
}

func (f *scfqFlow) headItem() *scfqItem { return &f.ring[f.head] }

func (f *scfqFlow) push(it scfqItem) {
	if f.count == len(f.ring) {
		next := make([]scfqItem, max(2*len(f.ring), 8))
		for i := 0; i < f.count; i++ {
			next[i] = f.ring[(f.head+i)%len(f.ring)]
		}
		f.ring = next
		f.head = 0
	}
	f.ring[(f.head+f.count)%len(f.ring)] = it
	f.count++
}

func (f *scfqFlow) pop() scfqItem {
	it := f.ring[f.head]
	f.ring[f.head] = scfqItem{}
	f.head = (f.head + 1) % len(f.ring)
	f.count--
	return it
}

// SCFQ is self-clocked fair queueing: each packet gets a finish tag
// F = max(V, F_prev(flow)) + size/weight, where the virtual time V is the
// finish tag of the packet currently in service; packets are served in
// increasing tag order. Backlogged flows receive throughput proportional
// to their weights, as GPS prescribes.
//
// Packets live in per-flow ring buffers; the heap holds only backlogged
// flows, keyed by their head packet's (finish, seq). Within a flow, tags
// are strictly increasing, so serving heap-minimum head packets yields
// exactly the global (finish, seq) order with a heap of size O(#flows)
// instead of O(#packets) — and zero allocation in steady state.
type SCFQ struct {
	flows   []scfqFlow    // dense flow table
	slot    map[int]int32 // flow ID → flows index
	heap    []int32       // backlogged flow indices, 4-ary min-heap
	v       float64
	seq     uint64
	backlog int
}

// NewSCFQ returns an empty fair queueing scheduler. Flows not explicitly
// weighted get weight 1.
func NewSCFQ() *SCFQ {
	return &SCFQ{slot: make(map[int]int32)}
}

// flowSlot returns the dense index for a flow ID, creating it on first use.
func (s *SCFQ) flowSlot(id int) int32 {
	if fi, ok := s.slot[id]; ok {
		return fi
	}
	fi := int32(len(s.flows))
	s.flows = append(s.flows, scfqFlow{weight: 1, heapIdx: -1})
	s.slot[id] = fi
	return fi
}

// SetWeight assigns a flow's weight (share of capacity among backlogged
// flows). Weights must be positive.
func (s *SCFQ) SetWeight(flow int, w float64) error {
	if !(w > 0) {
		return fmt.Errorf("sched: weight must be positive, got %g", w)
	}
	s.flows[s.flowSlot(flow)].weight = w
	return nil
}

// Enqueue implements Scheduler.
func (s *SCFQ) Enqueue(p Packet) error {
	if p.Size <= 0 {
		return fmt.Errorf("sched: packet size must be positive, got %g", p.Size)
	}
	fi := s.flowSlot(p.Flow)
	f := &s.flows[fi]
	start := s.v
	if f.lastF > start {
		start = f.lastF
	}
	finish := start + p.Size/f.weight
	f.lastF = finish
	s.seq++
	f.push(scfqItem{pkt: p, finish: finish, seq: s.seq})
	s.backlog++
	if f.count == 1 {
		s.heapPush(fi)
	}
	return nil
}

// Dequeue implements Scheduler; serving a packet advances virtual time to
// its finish tag (the "self-clocking").
func (s *SCFQ) Dequeue() (Packet, bool) {
	if s.backlog == 0 {
		return Packet{}, false
	}
	fi := s.heap[0]
	f := &s.flows[fi]
	it := f.pop()
	s.v = it.finish
	s.backlog--
	if f.count > 0 {
		// The flow's next head has a later tag: re-settle it in place.
		s.siftDown(0)
	} else {
		s.heapRemoveTop()
	}
	return it.pkt, true
}

// Backlog implements Scheduler.
func (s *SCFQ) Backlog() int { return s.backlog }

// heapLess orders backlogged flows by their head packet's (finish, seq).
func (s *SCFQ) heapLess(a, b int32) bool {
	ha, hb := s.flows[a].headItem(), s.flows[b].headItem()
	if ha.finish != hb.finish {
		return ha.finish < hb.finish
	}
	return ha.seq < hb.seq
}

func (s *SCFQ) heapPush(fi int32) {
	s.heap = append(s.heap, fi)
	i := int32(len(s.heap) - 1)
	s.flows[fi].heapIdx = i
	s.siftUp(i)
}

func (s *SCFQ) heapRemoveTop() {
	n := len(s.heap) - 1
	s.flows[s.heap[0]].heapIdx = -1
	s.heap[0] = s.heap[n]
	s.heap = s.heap[:n]
	if n > 0 {
		s.flows[s.heap[0]].heapIdx = 0
		s.siftDown(0)
	}
}

func (s *SCFQ) siftUp(i int32) {
	for i > 0 {
		p := (i - 1) >> 2
		if !s.heapLess(s.heap[i], s.heap[p]) {
			break
		}
		s.swap(i, p)
		i = p
	}
}

func (s *SCFQ) siftDown(i int32) {
	n := int32(len(s.heap))
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if s.heapLess(s.heap[j], s.heap[m]) {
				m = j
			}
		}
		if !s.heapLess(s.heap[m], s.heap[i]) {
			break
		}
		s.swap(i, m)
		i = m
	}
}

func (s *SCFQ) swap(i, j int32) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.flows[s.heap[i]].heapIdx = i
	s.flows[s.heap[j]].heapIdx = j
}
