// Package sched implements the packet-scheduling substrate the paper's
// reservation-capable architecture presumes: admission control decides
// *who* gets in (internal/core, internal/resv), and a fair-queueing
// scheduler is what *enforces* each admitted flow's share on the wire. The
// paper's integrated-services context builds on generalized processor
// sharing (Parekh & Gallager, reference [10] in the paper); this package
// implements SCFQ — self-clocked fair queueing (Golestani) — a practical
// packet-by-packet approximation of GPS with the same long-run share
// guarantees, plus a FIFO scheduler as the best-effort baseline.
//
// The package-level simulator drives either scheduler with per-flow packet
// processes and measures realized throughput, so tests can verify the
// paper's premise directly: under overload, FIFO sharing collapses in
// proportion to the aggressor's demand, while fair queueing holds every
// admitted flow at its reserved share.
package sched

import (
	"container/heap"
	"fmt"
)

// Packet is one unit of work offered to the link.
type Packet struct {
	// Flow identifies the owning flow.
	Flow int
	// Size is the packet's service requirement (e.g. bits).
	Size float64
	// Arrival is the packet's arrival time.
	Arrival float64
}

// Scheduler selects the order in which queued packets are served.
type Scheduler interface {
	// Enqueue accepts a packet at its arrival time.
	Enqueue(p Packet) error
	// Dequeue pops the next packet to serve, or false when idle.
	Dequeue() (Packet, bool)
	// Backlog reports the number of queued packets.
	Backlog() int
}

// FIFO is the best-effort baseline: a single shared queue, no isolation.
type FIFO struct {
	q []Packet
}

// NewFIFO returns an empty FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Enqueue implements Scheduler.
func (f *FIFO) Enqueue(p Packet) error {
	if p.Size <= 0 {
		return fmt.Errorf("sched: packet size must be positive, got %g", p.Size)
	}
	f.q = append(f.q, p)
	return nil
}

// Dequeue implements Scheduler.
func (f *FIFO) Dequeue() (Packet, bool) {
	if len(f.q) == 0 {
		return Packet{}, false
	}
	p := f.q[0]
	f.q = f.q[1:]
	return p, true
}

// Backlog implements Scheduler.
func (f *FIFO) Backlog() int { return len(f.q) }

// scfqItem is a queued packet with its SCFQ finish tag.
type scfqItem struct {
	pkt    Packet
	finish float64
	seq    uint64
}

type scfqHeap []scfqItem

func (h scfqHeap) Len() int { return len(h) }
func (h scfqHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].seq < h[j].seq
}
func (h scfqHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *scfqHeap) Push(x interface{}) { *h = append(*h, x.(scfqItem)) }
func (h *scfqHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// SCFQ is self-clocked fair queueing: each packet gets a finish tag
// F = max(V, F_prev(flow)) + size/weight, where the virtual time V is the
// finish tag of the packet currently in service; packets are served in
// increasing tag order. Backlogged flows receive throughput proportional
// to their weights, as GPS prescribes.
type SCFQ struct {
	weights map[int]float64
	lastF   map[int]float64
	v       float64
	seq     uint64
	q       scfqHeap
}

// NewSCFQ returns an empty fair queueing scheduler. Flows not explicitly
// weighted get weight 1.
func NewSCFQ() *SCFQ {
	return &SCFQ{
		weights: make(map[int]float64),
		lastF:   make(map[int]float64),
	}
}

// SetWeight assigns a flow's weight (share of capacity among backlogged
// flows). Weights must be positive.
func (s *SCFQ) SetWeight(flow int, w float64) error {
	if !(w > 0) {
		return fmt.Errorf("sched: weight must be positive, got %g", w)
	}
	s.weights[flow] = w
	return nil
}

func (s *SCFQ) weight(flow int) float64 {
	if w, ok := s.weights[flow]; ok {
		return w
	}
	return 1
}

// Enqueue implements Scheduler.
func (s *SCFQ) Enqueue(p Packet) error {
	if p.Size <= 0 {
		return fmt.Errorf("sched: packet size must be positive, got %g", p.Size)
	}
	start := s.v
	if f, ok := s.lastF[p.Flow]; ok && f > start {
		start = f
	}
	finish := start + p.Size/s.weight(p.Flow)
	s.lastF[p.Flow] = finish
	s.seq++
	heap.Push(&s.q, scfqItem{pkt: p, finish: finish, seq: s.seq})
	return nil
}

// Dequeue implements Scheduler; serving a packet advances virtual time to
// its finish tag (the "self-clocking").
func (s *SCFQ) Dequeue() (Packet, bool) {
	if len(s.q) == 0 {
		return Packet{}, false
	}
	it := heap.Pop(&s.q).(scfqItem)
	s.v = it.finish
	return it.pkt, true
}

// Backlog implements Scheduler.
func (s *SCFQ) Backlog() int { return len(s.q) }
