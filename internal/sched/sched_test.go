package sched

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFIFOOrdering(t *testing.T) {
	f := NewFIFO()
	for i := 1; i <= 3; i++ {
		if err := f.Enqueue(Packet{Flow: i, Size: 1, Arrival: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if f.Backlog() != 3 {
		t.Errorf("backlog = %d", f.Backlog())
	}
	for i := 1; i <= 3; i++ {
		p, ok := f.Dequeue()
		if !ok || p.Flow != i {
			t.Fatalf("dequeue %d: got %+v, %v", i, p, ok)
		}
	}
	if _, ok := f.Dequeue(); ok {
		t.Error("empty dequeue should report false")
	}
	if err := f.Enqueue(Packet{Size: 0}); err == nil {
		t.Error("zero-size packet should fail")
	}
}

func TestSCFQValidation(t *testing.T) {
	s := NewSCFQ()
	if err := s.SetWeight(1, 0); err == nil {
		t.Error("zero weight should fail")
	}
	if err := s.Enqueue(Packet{Flow: 1, Size: -1}); err == nil {
		t.Error("negative size should fail")
	}
}

func TestSCFQInterleavesBackloggedFlows(t *testing.T) {
	s := NewSCFQ()
	// Two flows each enqueue 4 unit packets at t = 0; equal weights must
	// interleave them one-for-one.
	for i := 0; i < 4; i++ {
		if err := s.Enqueue(Packet{Flow: 1, Size: 1}); err != nil {
			t.Fatal(err)
		}
		if err := s.Enqueue(Packet{Flow: 2, Size: 1}); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[int]int{}
	for i := 0; i < 4; i++ {
		a, _ := s.Dequeue()
		b, _ := s.Dequeue()
		counts[a.Flow]++
		counts[b.Flow]++
		if a.Flow == b.Flow {
			t.Fatalf("round %d served flow %d twice", i, a.Flow)
		}
	}
	if counts[1] != 4 || counts[2] != 4 {
		t.Errorf("served counts %v", counts)
	}
}

func TestRunLinkValidation(t *testing.T) {
	if _, err := RunLink(NewFIFO(), 0, nil, 10); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := RunLink(NewFIFO(), 1, nil, 0); err == nil {
		t.Error("zero horizon should fail")
	}
	if _, err := RunLink(NewFIFO(), 1, []Source{{Flow: 1, Rate: 0, PacketSize: 1}}, 10); err == nil {
		t.Error("zero rate should fail")
	}
}

func TestSCFQEqualSharesUnderOverload(t *testing.T) {
	// Two flows each offer the full link capacity: fair queueing splits it
	// evenly.
	sources := []Source{
		{Flow: 1, Rate: 1, PacketSize: 0.01},
		{Flow: 2, Rate: 1, PacketSize: 0.01},
	}
	stats, err := RunLink(NewSCFQ(), 1, sources, 100)
	if err != nil {
		t.Fatal(err)
	}
	for flow := 1; flow <= 2; flow++ {
		if got := stats[flow].Throughput; math.Abs(got-0.5) > 0.02 {
			t.Errorf("flow %d throughput = %v, want ≈ 0.5", flow, got)
		}
	}
}

func TestSCFQWeightedShares(t *testing.T) {
	s := NewSCFQ()
	if err := s.SetWeight(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.SetWeight(2, 1); err != nil {
		t.Fatal(err)
	}
	sources := []Source{
		{Flow: 1, Rate: 1, PacketSize: 0.01},
		{Flow: 2, Rate: 1, PacketSize: 0.01},
	}
	stats, err := RunLink(s, 1, sources, 100)
	if err != nil {
		t.Fatal(err)
	}
	ratio := stats[1].Throughput / stats[2].Throughput
	if math.Abs(ratio-2) > 0.1 {
		t.Errorf("throughput ratio = %v, want ≈ 2 (weights 2:1)", ratio)
	}
}

func TestSCFQNonBackloggedFlowGetsDemand(t *testing.T) {
	// A light flow (20% of capacity) keeps its full demand while a
	// backlogged flow absorbs the remainder.
	sources := []Source{
		{Flow: 1, Rate: 0.2, PacketSize: 0.01},
		{Flow: 2, Rate: 2, PacketSize: 0.01},
	}
	stats, err := RunLink(NewSCFQ(), 1, sources, 200)
	if err != nil {
		t.Fatal(err)
	}
	if got := stats[1].Throughput; math.Abs(got-0.2) > 0.02 {
		t.Errorf("light flow throughput = %v, want ≈ 0.2", got)
	}
	if got := stats[2].Throughput; math.Abs(got-0.8) > 0.03 {
		t.Errorf("heavy flow throughput = %v, want ≈ 0.8", got)
	}
}

func TestWorkConservation(t *testing.T) {
	// Under persistent overload the link serves at full capacity under
	// both schedulers.
	sources := []Source{
		{Flow: 1, Rate: 1.5, PacketSize: 0.01},
		{Flow: 2, Rate: 1.5, PacketSize: 0.01},
	}
	for _, s := range []Scheduler{NewFIFO(), NewSCFQ()} {
		stats, err := RunLink(s, 1, sources, 100)
		if err != nil {
			t.Fatal(err)
		}
		total := stats[1].Served + stats[2].Served
		if math.Abs(total-100) > 1 {
			t.Errorf("%T served %v, want ≈ 100 (work conservation)", s, total)
		}
	}
}

func TestFairQueueingProtectsReservedShare(t *testing.T) {
	// The paper's premise, on the wire: a well-behaved flow (25% of
	// capacity) against an aggressor blasting 4× capacity. FIFO sharing
	// collapses the victim's throughput toward its packet share of the
	// queue; fair queueing — the enforcement half of the reservation
	// architecture — preserves it.
	victim := Source{Flow: 1, Rate: 0.25, PacketSize: 0.01}
	aggressor := Source{Flow: 2, Rate: 4, PacketSize: 0.01}

	fifoStats, err := RunLink(NewFIFO(), 1, []Source{victim, aggressor}, 200)
	if err != nil {
		t.Fatal(err)
	}
	scfqStats, err := RunLink(NewSCFQ(), 1, []Source{victim, aggressor}, 200)
	if err != nil {
		t.Fatal(err)
	}
	// FIFO: the victim gets ≈ its fraction of offered packets,
	// 0.25/4.25 ≈ 0.06.
	if got := fifoStats[1].Throughput; got > 0.1 {
		t.Errorf("FIFO victim throughput = %v; expected collapse below 0.1", got)
	}
	// Fair queueing: the victim keeps its full demand.
	if got := scfqStats[1].Throughput; math.Abs(got-0.25) > 0.03 {
		t.Errorf("SCFQ victim throughput = %v, want ≈ 0.25", got)
	}
}

func TestSCFQFairnessProperty(t *testing.T) {
	// For random weight pairs, backlogged throughput ratios track the
	// weight ratio.
	prop := func(seedA, seedB float64) bool {
		w1 := 0.5 + math.Mod(math.Abs(seedA), 4)
		w2 := 0.5 + math.Mod(math.Abs(seedB), 4)
		s := NewSCFQ()
		if err := s.SetWeight(1, w1); err != nil {
			return false
		}
		if err := s.SetWeight(2, w2); err != nil {
			return false
		}
		sources := []Source{
			{Flow: 1, Rate: 1, PacketSize: 0.02},
			{Flow: 2, Rate: 1, PacketSize: 0.02},
		}
		stats, err := RunLink(s, 1, sources, 50)
		if err != nil {
			return false
		}
		got := stats[1].Throughput / stats[2].Throughput
		want := w1 / w2
		return math.Abs(got-want) < 0.12*want
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestDelayBounded(t *testing.T) {
	// An underloaded link keeps delays near a packet time.
	sources := []Source{{Flow: 1, Rate: 0.5, PacketSize: 0.01}}
	stats, err := RunLink(NewSCFQ(), 1, sources, 100)
	if err != nil {
		t.Fatal(err)
	}
	if stats[1].MaxDelay > 0.05 {
		t.Errorf("max delay = %v, want ≈ one packet time", stats[1].MaxDelay)
	}
}
