// Package search grid-searches admission-policy knobs over the discrete-event
// simulator and the live load harness, cross-validating every grid cell that
// has a closed-form counterpart against the analytical model.
//
// The two modes measure different systems on purpose:
//
//   - "live" drives a real resv.Server through internal/loadgen. Denied flows
//     stay in the offered population and re-request as capacity frees, so the
//     offered load is M/M/∞ with Poisson occupancy and an arriving flow is
//     denied exactly when the standing population is at the policy's limit L:
//     the counterpart is P(pop ≥ L) = TailProb(L−1) by PASTA. Live mode is
//     restricted to clock-free policies (counting, tiered), because the
//     harness compresses virtual time while the server's policy clock is wall
//     time.
//   - "sim" runs internal/sim with the policy plugged into the arrival path
//     (1 virtual second = 1e9 policy nanoseconds, so clocked policies see
//     honest time). Rejected flows leave, so admission is an M/M/L/L loss
//     system and the per-attempt blocking counterpart is the Erlang loss
//     formula B(L, k̄) = PMF(L)/CDF(L) under Poisson load.
//
// Cells without a counterpart (token-bucket shedding, a measured gate that
// can bind below its hard bound) are still measured and reported — with the
// token bucket's calibration verdict attached, so a miscalibrated bucket that
// degenerates into load shedding (SNIPPETS.md's 96%-rejection pathology) is
// flagged rather than silently swept over.
package search

import (
	"context"
	"fmt"
	"math"

	"beqos/internal/core"
	"beqos/internal/dist"
	"beqos/internal/loadgen"
	"beqos/internal/policy"
	"beqos/internal/resv"
	"beqos/internal/rng"
	"beqos/internal/sim"
	"beqos/internal/sweep"
	"beqos/internal/utility"
)

// SigmaBound is the acceptance threshold for checked cells, shared with the
// load harness's cross-validation.
const SigmaBound = loadgen.SigmaBound

// cellStream offsets each grid cell's rng.Substream index so cells draw
// decorrelated seeds from the spec seed.
const cellStream = 0xbb67ae85

// Spec describes one policy grid search. K1 and K2 are the policy's two
// knobs; their meaning depends on the policy:
//
//	counting, bandwidth:  none (leave empty)
//	tiered:        K1 = standard-class limit as a fraction of kmax,
//	               K2 = sheddable-class limit as a fraction of kmax
//	token-bucket:  K1 = refill rate (admissions per virtual second),
//	               K2 = burst (bucket depth)
//	measured:      K1 = occupancy target as a fraction of kmax,
//	               K2 = estimator time constant τ (virtual seconds)
//
// A knob value ≤ 0 (or an empty grid) selects the policy's neutral default.
type Spec struct {
	// Policy names the admission policy under search: counting, bandwidth,
	// token-bucket, tiered, or measured.
	Policy string
	// Capacity and Util describe the link; KMax = 0 derives the critical
	// threshold kmax(C) from the utility function.
	Capacity float64
	Util     utility.Function
	KMax     int
	// Rate and Hold set the offered dynamics (k̄ = Rate·Hold), Duration the
	// measured horizon, all in virtual time units.
	Rate, Hold float64
	Duration   float64
	// Mode selects the measurement plane: "live" (loadgen against a real
	// server; clock-free policies only) or "sim" (the default).
	Mode string
	// Replicates is the number of independent sim replications per cell
	// (default 4, minimum 2). Live cells are single runs with batch-means
	// errors.
	Replicates int
	// K1, K2 are the knob grids; the search visits their cross product.
	K1, K2 []float64
	// Seed1, Seed2 seed the search; identical specs produce identical
	// reports.
	Seed1, Seed2 uint64
	// Workers bounds cell-level parallelism (0 = GOMAXPROCS).
	Workers int
}

// Cell is one grid point's outcome.
type Cell struct {
	// K1, K2 are the knob values and Limit the effective admission limit L
	// the knobs imply for the offered (standard-class) traffic.
	K1, K2 float64
	Limit  int
	// Blocking is the measured blocking probability — arriving-flow denial
	// rate in live mode, per-attempt rejection rate in sim mode — with its
	// standard error.
	Blocking float64
	Sigma    float64
	// Predicted is the analytical counterpart when Checked (TailProb(L−1)
	// live, Erlang B(L, k̄) sim); Z is |Blocking−Predicted|/Sigma.
	Predicted float64
	Z         float64
	Checked   bool
	// OK is true when the cell is unchecked or within SigmaBound, with zero
	// anomalies and no residual reservations.
	OK bool
	// MeanUtility is the measured per-flow utility.
	MeanUtility float64
	// Flows counts measured flows and Anomalies protocol contradictions
	// (live mode; always 0 in sim mode).
	Flows     int
	Anomalies int
	// ShedFraction and Degenerate carry the token bucket's calibration
	// verdict (zero-valued for other policies).
	ShedFraction float64
	Degenerate   bool
}

// Report is a completed policy search.
type Report struct {
	// Policy and Mode echo the spec; KMax is the resolved critical
	// threshold and MeanLoad the offered k̄.
	Policy   string
	Mode     string
	KMax     int
	MeanLoad float64
	// Cells holds one entry per (K1, K2) grid point, in grid order.
	Cells []Cell
}

// AllOK reports whether every cell passed (unchecked cells pass unless they
// recorded anomalies).
func (r *Report) AllOK() bool {
	for _, c := range r.Cells {
		if !c.OK {
			return false
		}
	}
	return true
}

// Checked counts cells with an analytical counterpart.
func (r *Report) Checked() int {
	n := 0
	for _, c := range r.Cells {
		if c.Checked {
			n++
		}
	}
	return n
}

// withDefaults validates the spec and resolves kmax.
func (s Spec) withDefaults() (Spec, int, error) {
	if !(s.Capacity > 0) {
		return s, 0, fmt.Errorf("search: capacity must be positive, got %g", s.Capacity)
	}
	if s.Util == nil {
		return s, 0, fmt.Errorf("search: utility must be non-nil")
	}
	if !(s.Rate > 0) || !(s.Hold > 0) {
		return s, 0, fmt.Errorf("search: need positive rate and holding time, got (%g, %g)", s.Rate, s.Hold)
	}
	if !(s.Duration > 0) {
		return s, 0, fmt.Errorf("search: duration must be positive, got %g", s.Duration)
	}
	switch s.Mode {
	case "":
		s.Mode = "sim"
	case "sim":
	case "live":
		switch s.Policy {
		case "counting", "tiered":
		default:
			return s, 0, fmt.Errorf("search: live mode compresses virtual time and is only valid for clock-free policies (counting, tiered), not %q", s.Policy)
		}
	default:
		return s, 0, fmt.Errorf("search: unknown mode %q (want live or sim)", s.Mode)
	}
	switch s.Policy {
	case "counting", "bandwidth", "token-bucket", "tiered", "measured":
	default:
		return s, 0, fmt.Errorf("search: unknown policy %q", s.Policy)
	}
	if s.Replicates == 0 {
		s.Replicates = 4
	}
	if s.Replicates < 2 {
		return s, 0, fmt.Errorf("search: need at least 2 replicates, got %d", s.Replicates)
	}
	if len(s.K1) == 0 {
		s.K1 = []float64{0}
	}
	if len(s.K2) == 0 {
		s.K2 = []float64{0}
	}
	kmax := s.KMax
	if kmax == 0 {
		k, ok := utility.KMax(s.Util, s.Capacity)
		if !ok {
			return s, 0, fmt.Errorf("search: utility %q has no finite kmax; set KMax explicitly", s.Util.Name())
		}
		kmax = k
	}
	if kmax < 1 {
		return s, 0, fmt.Errorf("search: kmax must be ≥ 1, got %d", kmax)
	}
	return s, kmax, nil
}

// knobLimit turns a fractional knob into an integer limit in [1, max];
// values outside (0, 1) mean "the full limit".
func knobLimit(frac float64, max int) int {
	if !(frac > 0) || frac >= 1 {
		return max
	}
	l := int(frac*float64(max) + 0.5)
	if l < 1 {
		l = 1
	}
	if l > max {
		l = max
	}
	return l
}

// buildPolicy constructs one fresh policy instance for a grid cell and
// returns it with the effective standard-traffic admission limit L and
// whether the cell has an analytical counterpart.
func (s *Spec) buildPolicy(kmax int, k1, k2 float64) (policy.Policy, int, bool, error) {
	switch s.Policy {
	case "counting":
		p, err := policy.NewCounting(s.Capacity, kmax)
		return p, kmax, true, err
	case "bandwidth":
		// Offered flows request unit rate, so the capacity bound admits
		// floor(C) of them.
		p, err := policy.NewBandwidth(s.Capacity)
		return p, int(s.Capacity), true, err
	case "tiered":
		std := knobLimit(k1, kmax)
		shed := knobLimit(k2, kmax)
		if shed > std {
			shed = std
		}
		p, err := policy.NewTiered(s.Capacity, kmax, std, shed)
		// The harness offers standard-class traffic, so the standard tier
		// is the binding limit.
		return p, std, true, err
	case "token-bucket":
		inner, err := policy.NewCounting(s.Capacity, kmax)
		if err != nil {
			return nil, 0, false, err
		}
		rate, burst := k1, k2
		if !(rate > 0) {
			rate = s.Rate
		}
		if !(burst > 0) {
			burst = float64(kmax)
		}
		p, err := policy.NewTokenBucket(inner, rate, burst)
		// Rate-based shedding has no occupancy-only closed form; the cell
		// is measured and calibration-checked, not σ-gated.
		return p, kmax, false, err
	case "measured":
		tf := k1
		if !(tf > 0) {
			tf = 1
		}
		target := tf * float64(kmax)
		tau := k2
		if !(tau > 0) {
			tau = s.Hold
		}
		p, err := policy.NewMeasured(s.Capacity, kmax, target, tau)
		// With target ≥ kmax+1 the estimator gate can never bind (the
		// occupancy estimate is ≤ kmax), so the policy is exactly counting
		// and the Erlang counterpart applies.
		return p, kmax, target >= float64(kmax)+1, err
	default:
		return nil, 0, false, fmt.Errorf("search: unknown policy %q", s.Policy)
	}
}

// Run executes the grid search.
func Run(ctx context.Context, spec Spec) (*Report, error) {
	s, kmax, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	kbar := s.Rate * s.Hold
	pois, err := dist.NewPoisson(kbar)
	if err != nil {
		return nil, err
	}
	type point struct {
		i      int
		k1, k2 float64
	}
	var points []point
	for _, k1 := range s.K1 {
		for _, k2 := range s.K2 {
			points = append(points, point{i: len(points), k1: k1, k2: k2})
		}
	}
	cells, err := sweep.Map(ctx, s.Workers, points, func(p point) (Cell, error) {
		seed1, seed2 := rng.Substream(s.Seed1, s.Seed2, cellStream+uint64(p.i))
		if s.Mode == "live" {
			return s.runLive(kmax, p.k1, p.k2, pois, seed1, seed2)
		}
		return s.runSim(kmax, p.k1, p.k2, pois, seed1, seed2)
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Policy:   s.Policy,
		Mode:     s.Mode,
		KMax:     kmax,
		MeanLoad: kbar,
		Cells:    cells,
	}, nil
}

// judge fills a cell's Predicted/Z/OK fields from its measurement.
func judge(c *Cell, predicted float64) {
	if !c.Checked {
		c.OK = c.Anomalies == 0
		return
	}
	c.Predicted = predicted
	diff := math.Abs(c.Blocking - predicted)
	switch {
	case diff == 0:
		c.Z = 0
	case c.Sigma > 0:
		c.Z = diff / c.Sigma
	default:
		c.Z = math.Inf(1)
	}
	c.OK = c.Z <= SigmaBound && c.Anomalies == 0
}

// runLive measures one cell against a real server through the load harness.
func (s *Spec) runLive(kmax int, k1, k2 float64, pois dist.Poisson, seed1, seed2 uint64) (Cell, error) {
	pol, limit, checked, err := s.buildPolicy(kmax, k1, k2)
	if err != nil {
		return Cell{}, err
	}
	srv, err := resv.NewServerPolicy(pol, 0)
	if err != nil {
		return Cell{}, err
	}
	defer srv.Close()
	res, err := loadgen.Run(loadgen.Config{
		Server:       srv,
		Capacity:     s.Capacity,
		Util:         s.Util,
		Rate:         s.Rate,
		Hold:         s.Hold,
		Duration:     s.Duration,
		Seed1:        seed1,
		Seed2:        seed2,
		PolicyDenies: limit < kmax,
	})
	if err != nil {
		return Cell{}, fmt.Errorf("search: live cell (%g, %g): %w", k1, k2, err)
	}
	cell := Cell{
		K1: k1, K2: k2, Limit: limit, Checked: checked,
		Blocking:    res.DenyRate,
		Sigma:       res.DenySigma,
		MeanUtility: res.MeanUtility,
		Flows:       res.Flows,
		Anomalies:   res.Anomalies,
	}
	if res.FinalActive != 0 {
		cell.Anomalies++ // residual reservations after cleanup
	}
	// An arriving flow is denied exactly when the standing Poisson
	// population already fills the limit: P(pop ≥ L) by PASTA.
	judge(&cell, pois.TailProb(limit-1))
	if cell.Checked && limit == kmax {
		// At full limit the policy must be behaviorally identical to plain
		// counting admission; hold it to the complete cross-validation
		// (blocking, utility R(C), offered load, protocol hygiene).
		m, err := core.New(pois, s.Util)
		if err != nil {
			return Cell{}, err
		}
		cr, err := loadgen.CrossCheck(res, m, s.Capacity)
		if err != nil {
			return Cell{}, err
		}
		if !cr.AllOK() {
			cell.OK = false
		}
	}
	return cell, nil
}

// runSim measures one cell over independent simulator replications, each
// with a fresh policy instance (policies are stateful).
func (s *Spec) runSim(kmax int, k1, k2 float64, pois dist.Poisson, seed1, seed2 uint64) (Cell, error) {
	arr, err := sim.NewPoissonArrivals(s.Rate)
	if err != nil {
		return Cell{}, err
	}
	hold, err := sim.NewExpHolding(s.Hold)
	if err != nil {
		return Cell{}, err
	}
	warmup := 5 * s.Hold
	var limit int
	var checked bool
	blk := make([]float64, s.Replicates)
	util := make([]float64, s.Replicates)
	flows := 0
	var decisions, sheds uint64
	degenerate := false
	for i := 0; i < s.Replicates; i++ {
		pol, l, ck, err := s.buildPolicy(kmax, k1, k2)
		if err != nil {
			return Cell{}, err
		}
		limit, checked = l, ck
		r1, r2 := rng.Substream(seed1, seed2, uint64(i))
		res, err := sim.Run(sim.Config{
			Capacity:  s.Capacity,
			Util:      s.Util,
			Policy:    sim.Reservation,
			KMax:      kmax,
			Admission: pol,
			Arrivals:  arr,
			Holding:   hold,
			Horizon:   warmup + s.Duration,
			Warmup:    warmup,
			Seed1:     r1,
			Seed2:     r2,
		})
		if err != nil {
			return Cell{}, fmt.Errorf("search: sim cell (%g, %g) replicate %d: %w", k1, k2, i, err)
		}
		blk[i] = res.BlockingRate
		util[i] = res.MeanUtility
		flows += res.Flows
		if tb, ok := pol.(*policy.TokenBucket); ok {
			cal := tb.Calibration()
			decisions += cal.Decisions
			sheds += cal.Sheds
			degenerate = degenerate || cal.Degenerate
		}
	}
	mBlk, seBlk := meanStderr(blk)
	mUtil, _ := meanStderr(util)
	cell := Cell{
		K1: k1, K2: k2, Limit: limit, Checked: checked,
		Blocking:    mBlk,
		Sigma:       seBlk,
		MeanUtility: mUtil,
		Flows:       flows,
		Degenerate:  degenerate,
	}
	if decisions > 0 {
		cell.ShedFraction = float64(sheds) / float64(decisions)
	}
	// Rejected flows leave the system, so admission is the M/M/L/L loss
	// system and per-attempt blocking is the Erlang loss probability.
	judge(&cell, pois.PMF(limit)/pois.CDF(limit))
	return cell, nil
}

// meanStderr is the across-replication mean and standard error.
func meanStderr(xs []float64) (mean, stderr float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / (n - 1) / n)
}
