package search

import (
	"context"
	"testing"

	"beqos/internal/utility"
)

func rigid(t *testing.T, bhat float64) utility.Function {
	t.Helper()
	u, err := utility.NewRigid(bhat)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestSpecValidation(t *testing.T) {
	base := Spec{
		Policy:   "counting",
		Capacity: 8,
		Util:     rigid(t, 1),
		Rate:     12,
		Hold:     0.5,
		Duration: 10,
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"unknown policy", func(s *Spec) { s.Policy = "fifo" }},
		{"unknown mode", func(s *Spec) { s.Mode = "dream" }},
		{"clocked policy live", func(s *Spec) { s.Policy = "token-bucket"; s.Mode = "live" }},
		{"measured live", func(s *Spec) { s.Policy = "measured"; s.Mode = "live" }},
		{"no capacity", func(s *Spec) { s.Capacity = 0 }},
		{"no utility", func(s *Spec) { s.Util = nil }},
		{"one replicate", func(s *Spec) { s.Replicates = 1 }},
	}
	for _, tc := range cases {
		s := base
		tc.mutate(&s)
		if _, err := Run(context.Background(), s); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestSimCountingMatchesErlang pins the sim-mode oracle: plain counting
// admission in the simulator is an M/M/kmax/kmax loss system, so its
// per-attempt blocking must land within 3σ of the Erlang loss formula.
func TestSimCountingMatchesErlang(t *testing.T) {
	rep, err := Run(context.Background(), Spec{
		Policy:   "counting",
		Capacity: 8,
		Util:     rigid(t, 1),
		Rate:     12,
		Hold:     0.5,
		Duration: 300,
		Mode:     "sim",
		Seed1:    21, Seed2: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 1 || !rep.Cells[0].Checked {
		t.Fatalf("want one checked cell, got %+v", rep.Cells)
	}
	c := rep.Cells[0]
	if !c.OK {
		t.Errorf("blocking %.4f ± %.4f vs Erlang %.4f (z = %.2f)", c.Blocking, c.Sigma, c.Predicted, c.Z)
	}
	if c.Limit != 8 {
		t.Errorf("limit = %d, want kmax 8", c.Limit)
	}
}

// TestLiveTieredCrossValidates runs the tiered policy against a real server:
// the full-limit cell must pass the complete model cross-validation (it is
// behaviorally plain counting) and the half-limit cell must match the
// PASTA counterpart P(pop ≥ L) at its reduced standard-class limit.
func TestLiveTieredCrossValidates(t *testing.T) {
	rep, err := Run(context.Background(), Spec{
		Policy:   "tiered",
		Capacity: 8,
		Util:     rigid(t, 1),
		Rate:     12,
		Hold:     0.5,
		Duration: 60,
		Mode:     "live",
		K1:       []float64{1, 0.5},
		Seed1:    5, Seed2: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("want 2 cells, got %d", len(rep.Cells))
	}
	full, half := rep.Cells[0], rep.Cells[1]
	if full.Limit != 8 || half.Limit != 4 {
		t.Fatalf("limits = (%d, %d), want (8, 4)", full.Limit, half.Limit)
	}
	for _, c := range rep.Cells {
		if !c.Checked {
			t.Errorf("cell L=%d has a counterpart but was not checked", c.Limit)
		}
		if !c.OK {
			t.Errorf("cell L=%d: blocking %.4f ± %.4f vs predicted %.4f (z = %.2f, anomalies %d)",
				c.Limit, c.Blocking, c.Sigma, c.Predicted, c.Z, c.Anomalies)
		}
	}
	if half.Blocking <= full.Blocking {
		t.Errorf("halving the standard tier did not raise blocking: %.4f vs %.4f", half.Blocking, full.Blocking)
	}
}

// TestTokenBucketDegenerateFlagged starves the bucket so nearly every
// request sheds: the search must surface the calibration pathology instead
// of reporting a quietly useless cell.
func TestTokenBucketDegenerateFlagged(t *testing.T) {
	rep, err := Run(context.Background(), Spec{
		Policy:   "token-bucket",
		Capacity: 8,
		Util:     rigid(t, 1),
		Rate:     12,
		Hold:     0.5,
		Duration: 100,
		Mode:     "sim",
		K1:       []float64{0.01}, // refill far below the arrival rate
		K2:       []float64{1},
		Seed1:    3, Seed2: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cells[0]
	if c.Checked {
		t.Error("token-bucket shedding has no closed-form counterpart; cell must be unchecked")
	}
	if !c.Degenerate {
		t.Errorf("starved bucket not flagged degenerate (shed fraction %.3f)", c.ShedFraction)
	}
	if c.ShedFraction < 0.9 {
		t.Errorf("shed fraction = %.3f, want ≥ 0.9 for a starved bucket", c.ShedFraction)
	}
}

// TestSearchDeterministic demands identical reports for identical specs.
func TestSearchDeterministic(t *testing.T) {
	spec := Spec{
		Policy:   "measured",
		Capacity: 8,
		Util:     rigid(t, 1),
		Rate:     12,
		Hold:     0.5,
		Duration: 50,
		Mode:     "sim",
		K1:       []float64{0.8, 1.5},
		K2:       []float64{0.25},
		Seed1:    1, Seed2: 2,
	}
	a, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Errorf("cell %d differs between identical searches:\n%+v\n%+v", i, a.Cells[i], b.Cells[i])
		}
	}
	// target 1.5·kmax ≥ kmax+1: the gate can never bind, so the cell is
	// checked; target 0.8·kmax binds below the hard bound and is not.
	if a.Cells[0].Checked || !a.Cells[1].Checked {
		t.Errorf("checked flags = (%v, %v), want (false, true)", a.Cells[0].Checked, a.Cells[1].Checked)
	}
}
