package sim

import (
	"testing"
)

// TestEngineDispatchZeroAlloc pins the engine's steady-state allocation
// budget: scheduling and dispatching tagged event records must not allocate
// once the heap's backing array has warmed up.
func TestEngineDispatchZeroAlloc(t *testing.T) {
	e := NewEngine()
	// Warm the heap to its steady-state footprint.
	for i := 0; i < 64; i++ {
		e.scheduleTagged(float64(i), evSample, 0, 0)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.scheduleTagged(1, evSample, 0, 0)
		if _, ok := e.next(1e18); !ok {
			t.Fatal("event lost")
		}
	})
	if allocs != 0 {
		t.Errorf("engine schedule+dispatch allocates %v/op, want 0", allocs)
	}
}

// TestRunAllocationBudget guards the simulator's zero-steady-state-
// allocation property end to end: a run landing thousands of flows must
// stay within a small fixed budget (setup, result histograms), nowhere
// near the old per-flow closure regime (~7 allocs per flow).
func TestRunAllocationBudget(t *testing.T) {
	cfg := mmInfConfig(t, 120, BestEffort, 5)
	cfg.Horizon = 500
	cfg.Warmup = 50
	res, err := Run(cfg) // ≈ 5000 flows
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows < 3000 {
		t.Fatalf("run too small to be meaningful: %d flows", res.Flows)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 200 {
		t.Errorf("Run allocates %v/op for %d flows, want a small flow-independent budget (≤ 200)", allocs, res.Flows)
	}
}

// TestFlowArenaRecycles checks the free list actually bounds the arena:
// a long run with ~100 concurrent flows must not grow the arena anywhere
// near the total flow count.
func TestFlowArenaRecycles(t *testing.T) {
	cfg := mmInfConfig(t, 120, BestEffort, 6)
	cfg.Horizon = 500
	cfg.Warmup = 50
	s, err := prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.run()
	if s.nflows < 3000 {
		t.Fatalf("run too small: %d flows", s.nflows)
	}
	if got := len(s.flows); got > 1024 {
		t.Errorf("flow arena grew to %d slots for %d flows; free list is not recycling", got, s.nflows)
	}
}
