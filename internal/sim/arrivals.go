package sim

import (
	"fmt"

	"beqos/internal/rng"
)

// Holding is a flow holding-time (service-time) distribution.
type Holding interface {
	// Sample draws one holding time.
	Sample(s *rng.Source) float64
	// Mean returns the expected holding time.
	Mean() float64
}

// ExpHolding is an exponential holding time, the memoryless baseline that
// yields Poisson occupancy under Poisson arrivals (M/M/∞).
type ExpHolding struct {
	// MeanTime is the expected holding time.
	MeanTime float64
}

// NewExpHolding returns an exponential holding time with the given mean.
func NewExpHolding(mean float64) (ExpHolding, error) {
	if !(mean > 0) {
		return ExpHolding{}, fmt.Errorf("sim: holding mean must be positive, got %g", mean)
	}
	return ExpHolding{MeanTime: mean}, nil
}

// Sample implements Holding.
func (h ExpHolding) Sample(s *rng.Source) float64 { return s.Exp(h.MeanTime) }

// Mean implements Holding.
func (h ExpHolding) Mean() float64 { return h.MeanTime }

// ParetoHolding is a heavy-tailed holding time, the classic ingredient of
// self-similar traffic (long-lived flows). Shape must exceed 1 for a finite
// mean; shapes near 1 give very long-range dependence.
type ParetoHolding struct {
	Scale float64
	Shape float64
}

// NewParetoHolding returns a Pareto holding time with the given scale and
// shape > 1.
func NewParetoHolding(scale, shape float64) (ParetoHolding, error) {
	if !(scale > 0) || !(shape > 1) {
		return ParetoHolding{}, fmt.Errorf("sim: Pareto holding needs scale > 0 and shape > 1, got (%g, %g)", scale, shape)
	}
	return ParetoHolding{Scale: scale, Shape: shape}, nil
}

// Sample implements Holding.
func (h ParetoHolding) Sample(s *rng.Source) float64 { return s.Pareto(h.Scale, h.Shape) }

// Mean implements Holding.
func (h ParetoHolding) Mean() float64 { return h.Scale * h.Shape / (h.Shape - 1) }

// Arrivals generates flow arrivals: Next returns the wait until the next
// arrival instant and the number of flows arriving together.
type Arrivals interface {
	Next(s *rng.Source) (wait float64, batch int)
}

// PoissonArrivals is the classical memoryless arrival process (batch 1).
type PoissonArrivals struct {
	// Rate is the arrival rate (flows per unit time).
	Rate float64
}

// NewPoissonArrivals returns a Poisson arrival process with the given rate.
func NewPoissonArrivals(rate float64) (PoissonArrivals, error) {
	if !(rate > 0) {
		return PoissonArrivals{}, fmt.Errorf("sim: arrival rate must be positive, got %g", rate)
	}
	return PoissonArrivals{Rate: rate}, nil
}

// Next implements Arrivals.
func (a PoissonArrivals) Next(s *rng.Source) (float64, int) {
	return s.Exp(1 / a.Rate), 1
}

// SessionArrivals models user sessions that each launch a heavy-tailed
// (Pareto) batch of simultaneous flows. Batched heavy-tailed arrivals are a
// simple generator of the overdispersed, algebraic-looking occupancy
// distributions the paper associates with self-similar traffic — unlike
// Poisson arrivals, which always yield Poisson occupancy in an
// infinite-server system no matter the holding-time distribution.
type SessionArrivals struct {
	// Rate is the session arrival rate.
	Rate float64
	// BatchScale and BatchShape parameterize the Pareto batch size; shape
	// in (1, 2] gives pronounced overdispersion.
	BatchScale float64
	BatchShape float64
}

// NewSessionArrivals returns a heavy-tailed session arrival process.
func NewSessionArrivals(rate, batchScale, batchShape float64) (SessionArrivals, error) {
	if !(rate > 0) || !(batchScale >= 1) || !(batchShape > 1) {
		return SessionArrivals{}, fmt.Errorf("sim: session arrivals need rate > 0, batch scale ≥ 1, batch shape > 1; got (%g, %g, %g)", rate, batchScale, batchShape)
	}
	return SessionArrivals{Rate: rate, BatchScale: batchScale, BatchShape: batchShape}, nil
}

// MeanBatch returns the expected batch size.
func (a SessionArrivals) MeanBatch() float64 {
	return a.BatchScale * a.BatchShape / (a.BatchShape - 1)
}

// Next implements Arrivals.
func (a SessionArrivals) Next(s *rng.Source) (float64, int) {
	batch := int(a.Pareto(s))
	if batch < 1 {
		batch = 1
	}
	return s.Exp(1 / a.Rate), batch
}

// Pareto draws the raw batch-size variate.
func (a SessionArrivals) Pareto(s *rng.Source) float64 {
	return s.Pareto(a.BatchScale, a.BatchShape)
}
