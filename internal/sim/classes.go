package sim

import (
	"fmt"

	"beqos/internal/rng"
	"beqos/internal/utility"
)

// FlowClass describes one application class in a heterogeneous simulation
// (§5's heterogeneous-flows extension, dynamically): flows of this class
// occur with probability proportional to Weight, evaluate the class's
// utility, and scale their bandwidth needs by Demand (a flow receiving
// share b performs like Util at b/Demand).
type FlowClass struct {
	Weight float64
	Util   utility.Function
	Demand float64
}

// normalizeClasses validates and normalizes a class list.
func normalizeClasses(classes []FlowClass) ([]FlowClass, error) {
	out := make([]FlowClass, len(classes))
	var total float64
	for i, c := range classes {
		if c.Util == nil {
			return nil, fmt.Errorf("sim: class %d has nil utility", i)
		}
		if !(c.Weight > 0) {
			return nil, fmt.Errorf("sim: class %d has non-positive weight %g", i, c.Weight)
		}
		if c.Demand < 0 {
			return nil, fmt.Errorf("sim: class %d has negative demand %g", i, c.Demand)
		}
		out[i] = c
		if out[i].Demand == 0 {
			out[i].Demand = 1
		}
		total += c.Weight
	}
	for i := range out {
		out[i].Weight /= total
	}
	return out, nil
}

// classMixture builds the population's expected utility function, used to
// derive the admission threshold kmax(C) exactly as the analytical model's
// utility.Mixture does.
func classMixture(classes []FlowClass) (utility.Function, error) {
	comps := make([]utility.Component, len(classes))
	for i, c := range classes {
		comps[i] = utility.Component{Fn: c.Util, Weight: c.Weight, Demand: c.Demand}
	}
	return utility.NewMixture(comps)
}

// pickClass samples a class index by weight.
func pickClass(classes []FlowClass, src *rng.Source) int {
	u := src.Float64()
	for i, c := range classes {
		u -= c.Weight
		if u < 0 {
			return i
		}
	}
	return len(classes) - 1
}
