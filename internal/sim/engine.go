// Package sim is a flow-level discrete-event simulator for a single
// bottleneck link. It generates flows from arrival/holding-time processes,
// applies either best-effort sharing or reservation-style admission
// control, and measures the stationary occupancy distribution, per-flow
// utilities, blocking and retry behavior.
//
// The paper (Breslau & Shenker, SIGCOMM 1998) postulates static load
// distributions P(k) rather than modeling flow dynamics; this package
// closes that gap: it produces the stationary distribution from explicit
// dynamics (as a dist.Empirical ready to feed back into the analytical
// model in internal/core) and cross-validates the paper's per-flow utility
// definitions against measured ones.
package sim

import "container/heap"

// event is a scheduled callback. seq breaks ties deterministically.
type event struct {
	at  float64
	seq uint64
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Engine is a deterministic discrete-event scheduler.
type Engine struct {
	now float64
	seq uint64
	pq  eventHeap
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn after the given (nonnegative) delay. Events scheduled
// for the same instant run in scheduling order.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.pq, event{at: e.now + delay, seq: e.seq, fn: fn})
}

// Run processes events until the queue empties or the clock passes until.
// Events at exactly until are processed.
func (e *Engine) Run(until float64) {
	for len(e.pq) > 0 {
		next := e.pq[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.pq)
		e.now = next.at
		next.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.pq) }
