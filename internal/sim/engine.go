// Package sim is a flow-level discrete-event simulator for a single
// bottleneck link. It generates flows from arrival/holding-time processes,
// applies either best-effort sharing or reservation-style admission
// control, and measures the stationary occupancy distribution, per-flow
// utilities, blocking and retry behavior.
//
// The paper (Breslau & Shenker, SIGCOMM 1998) postulates static load
// distributions P(k) rather than modeling flow dynamics; this package
// closes that gap: it produces the stationary distribution from explicit
// dynamics (as a dist.Empirical ready to feed back into the analytical
// model in internal/core) and cross-validates the paper's per-flow utility
// definitions against measured ones.
package sim

// eventKind tags a scheduled event record with its dispatch action. The
// simulator's hot loop schedules tagged records (no closure allocation);
// evFunc carries an arbitrary callback for external users of the engine.
type eventKind uint8

const (
	// evFunc runs the attached closure (the generic Schedule API).
	evFunc eventKind = iota
	// evPump fires one arrival batch (n flows) and re-arms the pump.
	evPump
	// evDepart ends flow `flow`'s holding time.
	evDepart
	// evSample records a §5.1 load observation for flow `flow`.
	evSample
	// evRetry re-submits rejected flow `flow` after its backoff.
	evRetry
	// evWload lands the pending workload-stream record and pulls the next
	// one (workload-driven runs replace evPump with this).
	evWload
)

// event is one scheduled record. seq breaks ties deterministically, so
// events scheduled for the same instant run in scheduling order.
type event struct {
	at   float64
	seq  uint64
	fn   func() // evFunc only
	kind eventKind
	flow int32 // flow-arena index (evDepart/evSample/evRetry)
	n    int32 // batch size (evPump)
}

// Engine is a deterministic discrete-event scheduler. Its priority queue
// is a typed 4-ary heap over event records: no container/heap interface
// boxing, no per-event allocation once the backing array has grown to the
// run's steady-state size.
type Engine struct {
	now float64
	seq uint64
	pq  []event
	// dispatched and maxQueued are plain observability tallies (the engine
	// is single-threaded): events popped and the queue's high-water mark.
	dispatched uint64
	maxQueued  int
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.pq) }

// Dispatched reports the total number of events popped and run so far.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// MaxQueued reports the event queue's high-water mark.
func (e *Engine) MaxQueued() int { return e.maxQueued }

// Schedule runs fn after the given (nonnegative) delay. Events scheduled
// for the same instant run in scheduling order.
func (e *Engine) Schedule(delay float64, fn func()) {
	ev := event{kind: evFunc, fn: fn}
	e.schedule(delay, ev)
}

// scheduleTagged enqueues a closure-free tagged record — the simulator's
// zero-allocation internal path.
func (e *Engine) scheduleTagged(delay float64, kind eventKind, flow, n int32) {
	e.schedule(delay, event{kind: kind, flow: flow, n: n})
}

func (e *Engine) schedule(delay float64, ev event) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	ev.at, ev.seq = e.now+delay, e.seq
	e.push(ev)
}

// next pops the earliest event at or before until, advancing the clock to
// it. When no such event exists it advances the clock to until and reports
// false; events strictly past until stay queued.
func (e *Engine) next(until float64) (event, bool) {
	if len(e.pq) == 0 || e.pq[0].at > until {
		if e.now < until {
			e.now = until
		}
		return event{}, false
	}
	ev := e.pop()
	e.now = ev.at
	e.dispatched++
	return ev, true
}

// Run processes closure events until the queue empties or the clock passes
// until. Events at exactly until are processed. (The simulator's internal
// loop uses next directly and dispatches tagged records itself.)
func (e *Engine) Run(until float64) {
	for {
		ev, ok := e.next(until)
		if !ok {
			return
		}
		if ev.fn != nil {
			ev.fn()
		}
	}
}

// less orders events by (at, seq).
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts into the 4-ary min-heap.
func (e *Engine) push(ev event) {
	e.pq = append(e.pq, ev)
	if len(e.pq) > e.maxQueued {
		e.maxQueued = len(e.pq)
	}
	i := len(e.pq) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !less(&e.pq[i], &e.pq[p]) {
			break
		}
		e.pq[i], e.pq[p] = e.pq[p], e.pq[i]
		i = p
	}
}

// pop removes and returns the heap minimum.
func (e *Engine) pop() event {
	top := e.pq[0]
	n := len(e.pq) - 1
	e.pq[0] = e.pq[n]
	e.pq[n] = event{} // drop the closure reference, if any
	e.pq = e.pq[:n]
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(&e.pq[j], &e.pq[m]) {
				m = j
			}
		}
		if !less(&e.pq[m], &e.pq[i]) {
			break
		}
		e.pq[i], e.pq[m] = e.pq[m], e.pq[i]
		i = m
	}
	return top
}
