package sim

import (
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	e.Run(10)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("events out of order: %v", got)
	}
	if e.Now() != 10 {
		t.Errorf("clock = %v, want 10", e.Now())
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(1, func() { got = append(got, i) })
	}
	e.Run(2)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.Schedule(1, tick)
		}
	}
	e.Schedule(1, tick)
	e.Run(1000)
	if count != 100 {
		t.Errorf("count = %d, want 100", count)
	}
	if e.Now() != 1000 {
		t.Errorf("clock = %v", e.Now())
	}
}

func TestEngineHorizonCutoff(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(5, func() { ran = true })
	e.Run(4.999)
	if ran {
		t.Error("event past horizon should not run")
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.Run(5)
	if !ran {
		t.Error("event at horizon should run")
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() {
		e.Schedule(-5, func() {
			if e.Now() < 1 {
				t.Error("negative delay ran in the past")
			}
		})
	})
	e.Run(2)
}

func TestEngineCounters(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(float64(i), func() {})
	}
	if got := e.MaxQueued(); got != 5 {
		t.Errorf("max queued = %d, want 5", got)
	}
	if got := e.Dispatched(); got != 0 {
		t.Errorf("dispatched = %d before Run, want 0", got)
	}
	e.Run(10)
	if got := e.Dispatched(); got != 5 {
		t.Errorf("dispatched = %d, want 5", got)
	}
	if got := e.MaxQueued(); got != 5 {
		t.Errorf("max queued = %d after drain, want 5 (high-water mark)", got)
	}
}
