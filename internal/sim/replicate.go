package sim

import (
	"context"
	"fmt"
	"math"

	"beqos/internal/rng"
	"beqos/internal/sweep"
)

// Summary aggregates a metric across independent replications.
type Summary struct {
	// Mean is the across-replication average.
	Mean float64
	// StdErr is the standard error of the mean.
	StdErr float64
	// N is the number of replications.
	N int
}

// String renders mean ± stderr.
func (s Summary) String() string {
	return fmt.Sprintf("%.6g ± %.2g", s.Mean, s.StdErr)
}

// Replication reports the replicated metrics of RunReplications.
type Replication struct {
	MeanUtility  Summary
	AvgOccupancy Summary
	BlockingRate Summary
}

// RunReplications runs n independent replications of cfg and reports
// across-replication means with standard errors — the defensible way to
// quote simulator numbers against the analytical model. Replications fan
// out over all available cores; see RunReplicationsWorkers for control.
func RunReplications(cfg Config, n int) (Replication, error) {
	return RunReplicationsWorkers(cfg, n, 0)
}

// RunReplicationsWorkers is RunReplications on an explicit worker budget
// (0 = GOMAXPROCS, 1 = sequential). Each replication i draws its seeds
// from rng.Substream(cfg.Seed1, cfg.Seed2, i) — a pure function of the
// base seed and the index — and results are reduced in index order, so
// the output is byte-identical for every worker count.
func RunReplicationsWorkers(cfg Config, n, workers int) (Replication, error) {
	if n < 2 {
		return Replication{}, fmt.Errorf("sim: need at least 2 replications, got %d", n)
	}
	if cfg.Admission != nil {
		// Config is copied by value per replication, but a policy.Policy is a
		// stateful pointer: replications would race on (and pollute) one
		// shared policy. Callers must run replicates themselves with a fresh
		// policy per run.
		return Replication{}, fmt.Errorf("sim: replications cannot share one stateful admission policy; build a fresh policy per replicate")
	}
	type metrics struct{ util, occ, blk float64 }
	outs := make([]metrics, n)
	err := sweep.ForEach(context.Background(), workers, n, func(i int) error {
		run := cfg
		run.Seed1, run.Seed2 = rng.Substream(cfg.Seed1, cfg.Seed2, uint64(i))
		res, err := Run(run)
		if err != nil {
			return fmt.Errorf("sim: replication %d: %w", i, err)
		}
		outs[i] = metrics{util: res.MeanUtility, occ: res.AvgOccupancy, blk: res.BlockingRate}
		return nil
	})
	if err != nil {
		return Replication{}, err
	}
	util := make([]float64, n)
	occ := make([]float64, n)
	blk := make([]float64, n)
	for i, m := range outs {
		util[i], occ[i], blk[i] = m.util, m.occ, m.blk
	}
	return Replication{
		MeanUtility:  summarize(util),
		AvgOccupancy: summarize(occ),
		BlockingRate: summarize(blk),
	}, nil
}

// summarize computes mean and standard error.
func summarize(xs []float64) Summary {
	n := float64(len(xs))
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= n
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return Summary{
		Mean:   mean,
		StdErr: math.Sqrt(ss / (n - 1) / n),
		N:      len(xs),
	}
}
