package sim

import (
	"fmt"
	"math"
)

// Summary aggregates a metric across independent replications.
type Summary struct {
	// Mean is the across-replication average.
	Mean float64
	// StdErr is the standard error of the mean.
	StdErr float64
	// N is the number of replications.
	N int
}

// String renders mean ± stderr.
func (s Summary) String() string {
	return fmt.Sprintf("%.6g ± %.2g", s.Mean, s.StdErr)
}

// Replication reports the replicated metrics of RunReplications.
type Replication struct {
	MeanUtility  Summary
	AvgOccupancy Summary
	BlockingRate Summary
}

// RunReplications runs n independent replications of cfg (reseeding each)
// and reports across-replication means with standard errors — the
// defensible way to quote simulator numbers against the analytical model.
func RunReplications(cfg Config, n int) (Replication, error) {
	if n < 2 {
		return Replication{}, fmt.Errorf("sim: need at least 2 replications, got %d", n)
	}
	util := make([]float64, 0, n)
	occ := make([]float64, 0, n)
	blk := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		run := cfg
		run.Seed1 = cfg.Seed1 + uint64(i)
		run.Seed2 = cfg.Seed2 ^ (uint64(i+1) * 0x9e3779b97f4a7c15)
		res, err := Run(run)
		if err != nil {
			return Replication{}, fmt.Errorf("sim: replication %d: %w", i, err)
		}
		util = append(util, res.MeanUtility)
		occ = append(occ, res.AvgOccupancy)
		blk = append(blk, res.BlockingRate)
	}
	return Replication{
		MeanUtility:  summarize(util),
		AvgOccupancy: summarize(occ),
		BlockingRate: summarize(blk),
	}, nil
}

// summarize computes mean and standard error.
func summarize(xs []float64) Summary {
	n := float64(len(xs))
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= n
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return Summary{
		Mean:   mean,
		StdErr: math.Sqrt(ss / (n - 1) / n),
		N:      len(xs),
	}
}
