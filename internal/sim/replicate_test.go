package sim

import (
	"runtime"
	"testing"
	"time"
)

// replicationConfigs covers every policy/retry/sampling shape the
// simulator supports; parallel replication must be byte-identical to
// sequential on all of them.
func replicationConfigs(t *testing.T) map[string]Config {
	t.Helper()
	short := func(policy Policy, seed uint64) Config {
		cfg := mmInfConfig(t, 115, policy, seed)
		cfg.Horizon = 1500
		cfg.Warmup = 100
		return cfg
	}
	cfgs := map[string]Config{
		"best-effort/S1":       short(BestEffort, 3),
		"reservation/S1":       short(Reservation, 5),
		"best-effort/timeavg":  short(BestEffort, 7),
		"best-effort/S10":      short(BestEffort, 9),
		"reservation/retrying": short(Reservation, 11),
	}
	c := cfgs["best-effort/timeavg"]
	c.Samples = 0
	cfgs["best-effort/timeavg"] = c
	c = cfgs["best-effort/S10"]
	c.Samples = 10
	cfgs["best-effort/S10"] = c
	c = cfgs["reservation/retrying"]
	c.Retry = &RetryConfig{MeanBackoff: 5, Penalty: 0.1, MaxAttempts: 20}
	cfgs["reservation/retrying"] = c

	arr, err := NewSessionArrivals(2, 2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	hold, err := NewExpHolding(8)
	if err != nil {
		t.Fatal(err)
	}
	cfgs["heavy-tail/S1"] = Config{
		Capacity: 1e9, Util: rigidFn(t), Policy: BestEffort,
		Arrivals: arr, Holding: hold,
		Horizon: 1500, Warmup: 100, Samples: 1,
		Seed1: 13, Seed2: 14,
	}
	return cfgs
}

// TestParallelReplicationsByteIdentical is the determinism contract of the
// parallel fan-out: every worker count yields the exact same bits as the
// sequential path, because each replicate's seeds come from
// rng.Substream(base, i) and reduction is in index order.
func TestParallelReplicationsByteIdentical(t *testing.T) {
	for name, cfg := range replicationConfigs(t) {
		seq, err := RunReplicationsWorkers(cfg, 6, 1)
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		for _, workers := range []int{2, 4, 0} {
			par, err := RunReplicationsWorkers(cfg, 6, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if par != seq {
				t.Errorf("%s: workers=%d result differs from sequential:\n  par %+v\n  seq %+v",
					name, workers, par, seq)
			}
		}
	}
}

// TestRunReplicationsDefaultIsParallel pins the public entry point to the
// worker-pool path (workers = GOMAXPROCS) without changing its output.
func TestRunReplicationsDefaultIsParallel(t *testing.T) {
	cfg := mmInfConfig(t, 110, Reservation, 3)
	cfg.Horizon = 1500
	cfg.Warmup = 100
	def, err := RunReplications(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RunReplicationsWorkers(cfg, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if def != seq {
		t.Errorf("default path differs from sequential:\n  def %+v\n  seq %+v", def, seq)
	}
}

// TestParallelReplicationsSpeedup measures the fan-out win on multi-core
// hosts. Timing-based, so it only runs where the win must exist (≥ 4
// cores) and asserts a conservative 2x for an embarrassingly parallel
// workload; single-core CI exercises correctness via the tests above.
func TestParallelReplicationsSpeedup(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need ≥ 4 cores, have %d", runtime.GOMAXPROCS(0))
	}
	if testing.Short() {
		t.Skip("timing test")
	}
	cfg := mmInfConfig(t, 120, BestEffort, 17)
	cfg.Horizon = 4000
	cfg.Warmup = 200
	start := time.Now()
	seq, err := RunReplicationsWorkers(cfg, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	seqDur := time.Since(start)
	start = time.Now()
	par, err := RunReplicationsWorkers(cfg, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	parDur := time.Since(start)
	if par != seq {
		t.Fatalf("parallel result differs from sequential")
	}
	if speedup := float64(seqDur) / float64(parDur); speedup < 2 {
		t.Errorf("8 replications on %d cores sped up only %.2fx (seq %v, par %v)",
			runtime.GOMAXPROCS(0), speedup, seqDur, parDur)
	}
}
