package sim

import (
	"fmt"

	"beqos/internal/dist"
	"beqos/internal/policy"
	"beqos/internal/rng"
	"beqos/internal/utility"
	"beqos/internal/workload"
)

// Policy selects the link architecture.
type Policy int

const (
	// BestEffort admits every flow and splits capacity evenly.
	BestEffort Policy = iota
	// Reservation admits at most KMax concurrent flows; excess requests
	// are rejected (and may retry, if configured).
	Reservation
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case BestEffort:
		return "best-effort"
	case Reservation:
		return "reservation"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// RetryConfig enables retry behavior for rejected reservation requests,
// mirroring the paper's §5.2 extension.
type RetryConfig struct {
	// MeanBackoff is the mean of the exponential wait before a retry.
	MeanBackoff float64
	// Penalty is the utility cost α charged per retry.
	Penalty float64
	// MaxAttempts caps total attempts per flow (≥ 1). Flows exceeding it
	// give up with only their accumulated penalties.
	MaxAttempts int
}

// Config describes one simulation run.
type Config struct {
	// Capacity is the link capacity C.
	Capacity float64
	// Util is the application utility function π. It may be nil when
	// Classes is set.
	Util utility.Function
	// Classes, when non-empty, makes the population heterogeneous: each
	// flow draws a class (by weight) and is scored with that class's
	// utility and demand scale. The admission threshold is derived from
	// the population's expected utility (a utility.Mixture), matching the
	// analytical model's §5 heterogeneous-flows treatment.
	Classes []FlowClass
	// Policy selects best-effort or reservation-capable behavior.
	Policy Policy
	// KMax is the reservation admission threshold; 0 derives it from the
	// utility function via kmax(C) = argmax k·π(C/k).
	KMax int
	// Admission, when non-nil, replaces the built-in counting check with a
	// pluggable admission policy (Reservation only): each request is offered
	// to the policy at the flow's virtual arrival time (1 virtual second =
	// 1e9 policy nanoseconds, rate 1, the flow's class index as its class),
	// and each departure is returned through Release. Policies are stateful;
	// a Config carrying one must not be shared across concurrent runs — see
	// RunReplicationsWorkers.
	Admission policy.Policy
	// Arrivals and Holding define the flow dynamics. Both must be nil
	// when Workload is set.
	Arrivals Arrivals
	Holding  Holding
	// Workload, when non-nil, drives the run from a declarative scenario
	// (internal/workload) instead of Arrivals/Holding: arrivals, holding
	// times, classes and phases all come from the scenario's
	// deterministic stream, seeded from Seed1/Seed2. Classes must be
	// empty (the scenario's mixture applies, scored with Util); Horizon 0
	// defaults to the scenario duration and Warmup 0 to the scenario
	// warmup.
	Workload *workload.Scenario
	// WorkloadRecord, when non-nil, observes every consumed workload
	// record in stream order — the golden-determinism trace hook.
	WorkloadRecord func(workload.Flow)
	// Horizon is the simulated duration; Warmup (< Horizon) is excluded
	// from all statistics.
	Horizon float64
	Warmup  float64
	// Samples is the paper's §5.1 S: a flow's performance is π at the
	// worst of S load observations (its arrival instant plus S−1 uniform
	// instants over its lifetime). Samples = 0 scores flows by their
	// time-average π instead.
	Samples int
	// Retry, if non-nil, makes rejected flows retry (Reservation only).
	Retry *RetryConfig
	// Seed1, Seed2 seed the deterministic random source.
	Seed1, Seed2 uint64
}

// Result reports a simulation run's measurements (post-warmup).
type Result struct {
	// Occupancy is the time-weighted distribution of concurrent admitted
	// flows, ready to feed into the analytical model.
	Occupancy *dist.Empirical
	// ArrivalLoad is the distribution of the load level seen by freshly
	// arriving flows (itself included) — a PASTA estimator of the paper's
	// size-biased "flow's-eye" distribution Q(k). For memoryless arrivals
	// it matches dist.NewSizeBiased of the stationary law.
	ArrivalLoad *dist.Empirical
	// AvgOccupancy is its mean.
	AvgOccupancy float64
	// MeanUtility is the average per-flow utility over all flows that
	// arrived after warmup (rejected flows contribute 0, retries their
	// penalties).
	MeanUtility float64
	// Flows counts flows arriving post-warmup; Admitted and Rejected
	// partition their final fates; Retries counts retry attempts.
	Flows    int
	Admitted int
	Rejected int
	Retries  int
	// BlockingRate is the per-attempt rejection rate.
	BlockingRate float64
	// PeakOccupancy is the largest concurrent flow count observed.
	PeakOccupancy int
	// Events counts discrete events dispatched by the engine; ArenaPeak is
	// the flow arena's high-water mark (live + free slots). Together they
	// bound the run's compute and memory footprint.
	Events    uint64
	ArenaPeak int
	// ClassUtility and ClassFlows report per-class mean utilities and flow
	// counts when Config.Classes was set.
	ClassUtility []float64
	ClassFlows   []int
	// PhaseFlows, PhaseAdmitted and PhaseRejected tally post-warmup flows
	// by final fate per scenario phase when Config.Workload was set
	// (indexed like Workload.Phases).
	PhaseFlows    []int
	PhaseAdmitted []int
	PhaseRejected []int
}

// flow carries per-flow measurement state. Flows live in simState's arena
// and are recycled through a free list: a flow index is valid from its
// arrival event until its departure (or final rejection), after which the
// slot is reused — no event ever outlives the flow it references, because
// §5.1 sample instants are drawn strictly inside the holding interval.
type flow struct {
	admittedAt float64
	utilAccum  float64 // ∫ π dt reference at admission (time-average mode)
	hold       float64 // pre-drawn holding time (workload runs only)
	attempts   int32
	maxLoad    int32
	class      int32 // index into the class list (0 when homogeneous)
	phase      int32 // scenario phase index (workload runs only)
	counted    bool  // true if the flow arrived post-warmup
}

// Run executes one simulation and returns its measurements.
func Run(cfg Config) (Result, error) {
	s, err := prepare(cfg)
	if err != nil {
		return Result{}, err
	}
	s.run()
	return s.result(), nil
}

// prepare validates cfg and builds the initial simulation state.
func prepare(cfg Config) (*simState, error) {
	if !(cfg.Capacity > 0) {
		return nil, fmt.Errorf("sim: capacity must be positive, got %g", cfg.Capacity)
	}
	if cfg.Workload != nil {
		if cfg.Arrivals != nil || cfg.Holding != nil {
			return nil, fmt.Errorf("sim: Workload replaces Arrivals/Holding; set one or the other")
		}
		if len(cfg.Classes) > 0 {
			return nil, fmt.Errorf("sim: Workload carries its own class mixture; Classes must be empty")
		}
		if cfg.Util == nil {
			return nil, fmt.Errorf("sim: workload runs need Util (scenario classes scale demand, not utility)")
		}
		for _, c := range cfg.Workload.Classes {
			cfg.Classes = append(cfg.Classes, FlowClass{
				Weight: c.Weight,
				Util:   cfg.Util,
				Demand: c.Demand,
			})
		}
		if cfg.Horizon == 0 {
			cfg.Horizon = cfg.Workload.Duration()
		}
		if cfg.Warmup == 0 {
			cfg.Warmup = cfg.Workload.Warmup
		}
	}
	var classes []FlowClass
	if len(cfg.Classes) > 0 {
		var err error
		classes, err = normalizeClasses(cfg.Classes)
		if err != nil {
			return nil, err
		}
		if cfg.Util == nil {
			mix, err := classMixture(classes)
			if err != nil {
				return nil, err
			}
			cfg.Util = mix
		}
	}
	if cfg.Util == nil || (cfg.Workload == nil && (cfg.Arrivals == nil || cfg.Holding == nil)) {
		return nil, fmt.Errorf("sim: utility, arrivals and holding must be non-nil")
	}
	if !(cfg.Horizon > 0) || cfg.Warmup < 0 || cfg.Warmup >= cfg.Horizon {
		return nil, fmt.Errorf("sim: need 0 ≤ warmup < horizon, got warmup=%g horizon=%g", cfg.Warmup, cfg.Horizon)
	}
	if cfg.Samples < 0 {
		return nil, fmt.Errorf("sim: samples must be nonnegative, got %d", cfg.Samples)
	}
	if cfg.Retry != nil {
		if cfg.Policy != Reservation {
			return nil, fmt.Errorf("sim: retries only apply to the reservation policy")
		}
		if !(cfg.Retry.MeanBackoff > 0) || cfg.Retry.MaxAttempts < 1 || cfg.Retry.Penalty < 0 {
			return nil, fmt.Errorf("sim: invalid retry config %+v", *cfg.Retry)
		}
	}
	if cfg.Admission != nil && cfg.Policy != Reservation {
		return nil, fmt.Errorf("sim: an admission policy requires the reservation policy")
	}
	kmax := cfg.KMax
	if cfg.Policy == Reservation && kmax == 0 {
		if cfg.Admission != nil && cfg.Admission.Bound() > 0 {
			kmax = cfg.Admission.Bound()
		} else {
			k, ok := utility.KMax(cfg.Util, cfg.Capacity)
			if !ok {
				return nil, fmt.Errorf("sim: utility %q has no finite kmax; pass KMax explicitly", cfg.Util.Name())
			}
			kmax = k
		}
	}
	if cfg.Policy == Reservation && kmax < 1 {
		return nil, fmt.Errorf("sim: reservation admits no flows at capacity %g", cfg.Capacity)
	}

	src := rng.New(cfg.Seed1, cfg.Seed2)
	eng := NewEngine()
	s := &simState{
		cfg:     cfg,
		classes: classes,
		kmax:    kmax,
		src:     src,
		eng:     eng,
		occLast: 0,
		// Preallocate the accumulators and arenas at plausible steady-state
		// sizes so the hot loop allocates only on (rare, amortized) growth.
		occTime:   make([]float64, 0, 128),
		arrCounts: make([]float64, 0, 128),
		flows:     make([]flow, 0, 256),
		free:      make([]int32, 0, 256),
	}
	if len(classes) > 0 {
		s.piAccumClass = make([]float64, len(classes))
		s.utilSumClass = make([]float64, len(classes))
		s.flowsClass = make([]int, len(classes))
	}
	if wl := cfg.Workload; wl != nil {
		s.wl = wl.Stream(cfg.Seed1, cfg.Seed2)
		s.phaseFlows = make([]int, len(wl.Phases))
		s.phaseAdmitted = make([]int, len(wl.Phases))
		s.phaseRejected = make([]int, len(wl.Phases))
	}

	return s, nil
}

// run primes the arrival pump and drains the event loop to the horizon.
// Each evPump event lands one batch, then draws the next interarrival and
// re-arms itself (same RNG draw order as a recursive closure pump, with no
// per-batch closure). Workload runs pull pre-drawn records from the
// scenario stream instead: one evWload per record, re-armed as each lands.
func (s *simState) run() {
	if s.wl != nil {
		s.pullRecord()
	} else {
		wait, batch := s.cfg.Arrivals.Next(s.src)
		s.eng.scheduleTagged(wait, evPump, 0, int32(batch))
	}
	s.loop()
}

// pullRecord advances the workload stream and schedules the next record's
// arrival. At most one evWload is outstanding, so wlNext is unambiguous
// at dispatch.
func (s *simState) pullRecord() {
	rec, ok := s.wl.Next()
	if !ok {
		return
	}
	if s.cfg.WorkloadRecord != nil {
		s.cfg.WorkloadRecord(rec)
	}
	s.wlNext = rec
	s.eng.scheduleTagged(rec.At-s.eng.Now(), evWload, 0, 0)
}

// simState carries the mutable simulation state.
type simState struct {
	cfg     Config
	classes []FlowClass
	kmax    int
	src     *rng.Source
	eng     *Engine

	// flows is the flow arena; free lists recycled slots.
	flows []flow
	free  []int32

	// wl is the workload stream (workload runs only); wlNext is the
	// pulled record awaiting its evWload dispatch. phaseFlows/Admitted/
	// Rejected tally post-warmup fates per scenario phase.
	wl            *workload.Stream
	wlNext        workload.Flow
	phaseFlows    []int
	phaseAdmitted []int
	phaseRejected []int

	active    int
	occTime   []float64 // time-weighted occupancy histogram (post-warmup)
	arrCounts []float64 // load level seen at fresh arrivals (post-warmup)
	occLast   float64   // last time the occupancy changed (or warmup start)
	piAccum   float64   // ∫ π(C/n(t)) dt, for time-average flow utility
	// piAccumClass holds per-class ∫ π_i(C/(n·d_i)) dt in heterogeneous
	// runs; utilSumClass and flowsClass tally per-class outcomes.
	piAccumClass []float64
	utilSumClass []float64
	flowsClass   []int
	peak         int
	utilSum      float64
	nflows       int
	admitted     int
	rejected     int
	retries      int
	attempts     int
}

// loop drains the event queue up to the horizon, dispatching tagged
// records. This is the simulator's entire steady state: no closures, no
// interface boxing, no allocation beyond amortized slice growth.
func (s *simState) loop() {
	for {
		ev, ok := s.eng.next(s.cfg.Horizon)
		if !ok {
			return
		}
		switch ev.kind {
		case evPump:
			now := s.eng.Now()
			counted := now >= s.cfg.Warmup
			for i := int32(0); i < ev.n; i++ {
				fi := s.newFlow()
				s.flows[fi].counted = counted
				s.arrive(fi)
			}
			wait, batch := s.cfg.Arrivals.Next(s.src)
			s.eng.scheduleTagged(wait, evPump, 0, int32(batch))
		case evDepart:
			s.depart(ev.flow)
			s.freeFlow(ev.flow)
		case evSample:
			f := &s.flows[ev.flow]
			if int32(s.active) > f.maxLoad {
				f.maxLoad = int32(s.active)
			}
		case evRetry:
			s.arrive(ev.flow)
		case evWload:
			rec := s.wlNext
			fi := s.newFlow()
			f := &s.flows[fi]
			f.counted = s.eng.Now() >= s.cfg.Warmup
			f.class = int32(rec.Class)
			f.phase = int32(rec.Phase)
			f.hold = rec.Hold
			s.arrive(fi)
			s.pullRecord()
		case evFunc:
			ev.fn()
		}
	}
}

// newFlow takes a zeroed slot from the free list (or grows the arena).
func (s *simState) newFlow() int32 {
	if n := len(s.free); n > 0 {
		fi := s.free[n-1]
		s.free = s.free[:n-1]
		return fi
	}
	s.flows = append(s.flows, flow{})
	return int32(len(s.flows) - 1)
}

// freeFlow recycles a slot once no scheduled event references it.
func (s *simState) freeFlow(fi int32) {
	s.flows[fi] = flow{}
	s.free = append(s.free, fi)
}

// evalUtil returns the utility a flow of class ci derives from share b.
func (s *simState) evalUtil(ci int32, b float64) float64 {
	if len(s.classes) == 0 {
		return s.cfg.Util.Eval(b)
	}
	c := s.classes[ci]
	return c.Util.Eval(b / c.Demand)
}

// advance accounts occupancy time up to now.
func (s *simState) advance() {
	now := s.eng.Now()
	start := s.occLast
	if start < s.cfg.Warmup {
		start = s.cfg.Warmup
	}
	if now > start {
		for len(s.occTime) <= s.active {
			s.occTime = append(s.occTime, 0)
		}
		s.occTime[s.active] += now - start
		if s.active > 0 {
			share := s.cfg.Capacity / float64(s.active)
			s.piAccum += (now - start) * s.cfg.Util.Eval(share)
			for i := range s.piAccumClass {
				s.piAccumClass[i] += (now - start) * s.evalUtil(int32(i), share)
			}
		}
	}
	s.occLast = now
}

func (s *simState) setActive(n int) {
	s.advance()
	s.active = n
	if n > s.peak {
		s.peak = n
	}
}

// arrive handles one flow request (first attempt or retry).
func (s *simState) arrive(fi int32) {
	f := &s.flows[fi]
	f.attempts++
	if f.attempts == 1 && len(s.classes) > 0 && s.wl == nil {
		f.class = int32(pickClass(s.classes, s.src))
	}
	if f.counted {
		s.attempts++
		if f.attempts == 1 {
			s.nflows++
			if len(s.classes) > 0 {
				s.flowsClass[f.class]++
			}
			if s.wl != nil {
				s.phaseFlows[f.phase]++
			}
			// PASTA sample of the demand process: the load level this
			// flow experiences, itself included.
			level := s.active + 1
			for len(s.arrCounts) <= level {
				s.arrCounts = append(s.arrCounts, 0)
			}
			s.arrCounts[level]++
		}
	}
	if s.cfg.Policy == Reservation {
		if adm := s.cfg.Admission; adm != nil {
			dec := adm.Admit(s.nowNs(), uint64(fi)+1, 1, uint8(f.class))
			if !dec.Admit {
				s.reject(fi)
				return
			}
		} else if s.active >= s.kmax {
			s.reject(fi)
			return
		}
	}
	s.admit(fi)
}

func (s *simState) admit(fi int32) {
	f := &s.flows[fi]
	if f.counted {
		s.admitted++
		if s.wl != nil {
			s.phaseAdmitted[f.phase]++
		}
	}
	s.setActive(s.active + 1)
	f.maxLoad = int32(s.active)
	if len(s.classes) > 0 {
		f.utilAccum = s.piAccumClass[f.class]
	} else {
		f.utilAccum = s.piAccum
	}
	f.admittedAt = s.eng.Now()
	var holding float64
	if s.wl != nil {
		holding = f.hold
	} else {
		holding = s.cfg.Holding.Sample(s.src)
	}
	// Extra load samples at uniform instants over the flow's lifetime
	// (§5.1): record the concurrent flow count at each. Sample instants
	// are strictly inside [0, holding), so every evSample fires before the
	// flow's evDepart recycles its slot.
	for i := 1; i < s.cfg.Samples; i++ {
		at := s.src.Float64() * holding
		s.eng.scheduleTagged(at, evSample, fi, 0)
	}
	s.eng.scheduleTagged(holding, evDepart, fi, 0)
}

// nowNs is the current virtual time on the admission policies' clock:
// one virtual second is 1e9 policy nanoseconds.
func (s *simState) nowNs() int64 {
	return int64(s.eng.Now() * 1e9)
}

func (s *simState) depart(fi int32) {
	f := &s.flows[fi]
	if s.cfg.Admission != nil {
		s.cfg.Admission.Release(s.nowNs(), 1)
	}
	s.setActive(s.active - 1)
	if !f.counted {
		return
	}
	duration := s.eng.Now() - f.admittedAt
	var pi float64
	if s.cfg.Samples == 0 && duration > 0 {
		// Time-average performance over the flow's lifetime.
		accum := s.piAccum
		if len(s.classes) > 0 {
			accum = s.piAccumClass[f.class]
		}
		pi = (accum - f.utilAccum) / duration
	} else {
		// Worst-of-S-samples performance.
		pi = s.evalUtil(f.class, s.cfg.Capacity/float64(f.maxLoad))
	}
	score := pi - s.penalty(f)
	s.utilSum += score
	if len(s.classes) > 0 {
		s.utilSumClass[f.class] += score
	}
}

func (s *simState) reject(fi int32) {
	f := &s.flows[fi]
	if s.cfg.Retry != nil && int(f.attempts) < s.cfg.Retry.MaxAttempts {
		if f.counted {
			s.retries++
		}
		s.eng.scheduleTagged(s.src.Exp(s.cfg.Retry.MeanBackoff), evRetry, fi, 0)
		return
	}
	if f.counted {
		s.rejected++
		if s.wl != nil {
			s.phaseRejected[f.phase]++
		}
		s.utilSum -= s.penalty(f)
		if len(s.classes) > 0 {
			s.utilSumClass[f.class] -= s.penalty(f)
		}
	}
	s.freeFlow(fi)
}

// penalty returns the accumulated retry penalty α·(attempts − 1).
func (s *simState) penalty(f *flow) float64 {
	if s.cfg.Retry == nil || f.attempts <= 1 {
		return 0
	}
	return s.cfg.Retry.Penalty * float64(f.attempts-1)
}

func (s *simState) result() Result {
	s.advance() // account the final stretch up to the horizon
	res := Result{
		Flows:         s.nflows,
		Admitted:      s.admitted,
		Rejected:      s.rejected,
		Retries:       s.retries,
		PeakOccupancy: s.peak,
		Events:        s.eng.Dispatched(),
		ArenaPeak:     len(s.flows),
	}
	if len(s.occTime) > 0 {
		if emp, err := dist.NewEmpirical(s.occTime); err == nil {
			res.Occupancy = emp
			res.AvgOccupancy = emp.Mean()
		}
	}
	if len(s.arrCounts) > 0 {
		if emp, err := dist.NewEmpirical(s.arrCounts); err == nil {
			res.ArrivalLoad = emp
		}
	}
	if s.nflows > 0 {
		res.MeanUtility = s.utilSum / float64(s.nflows)
	}
	if s.attempts > 0 {
		blocked := s.attempts - s.admitted
		res.BlockingRate = float64(blocked) / float64(s.attempts)
	}
	if len(s.classes) > 0 {
		res.ClassFlows = append([]int(nil), s.flowsClass...)
		res.ClassUtility = make([]float64, len(s.classes))
		for i, sum := range s.utilSumClass {
			if s.flowsClass[i] > 0 {
				res.ClassUtility[i] = sum / float64(s.flowsClass[i])
			}
		}
	}
	if s.wl != nil {
		res.PhaseFlows = append([]int(nil), s.phaseFlows...)
		res.PhaseAdmitted = append([]int(nil), s.phaseAdmitted...)
		res.PhaseRejected = append([]int(nil), s.phaseRejected...)
	}
	return res
}
