package sim

import (
	"fmt"

	"beqos/internal/dist"
	"beqos/internal/rng"
	"beqos/internal/utility"
)

// Policy selects the link architecture.
type Policy int

const (
	// BestEffort admits every flow and splits capacity evenly.
	BestEffort Policy = iota
	// Reservation admits at most KMax concurrent flows; excess requests
	// are rejected (and may retry, if configured).
	Reservation
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case BestEffort:
		return "best-effort"
	case Reservation:
		return "reservation"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// RetryConfig enables retry behavior for rejected reservation requests,
// mirroring the paper's §5.2 extension.
type RetryConfig struct {
	// MeanBackoff is the mean of the exponential wait before a retry.
	MeanBackoff float64
	// Penalty is the utility cost α charged per retry.
	Penalty float64
	// MaxAttempts caps total attempts per flow (≥ 1). Flows exceeding it
	// give up with only their accumulated penalties.
	MaxAttempts int
}

// Config describes one simulation run.
type Config struct {
	// Capacity is the link capacity C.
	Capacity float64
	// Util is the application utility function π. It may be nil when
	// Classes is set.
	Util utility.Function
	// Classes, when non-empty, makes the population heterogeneous: each
	// flow draws a class (by weight) and is scored with that class's
	// utility and demand scale. The admission threshold is derived from
	// the population's expected utility (a utility.Mixture), matching the
	// analytical model's §5 heterogeneous-flows treatment.
	Classes []FlowClass
	// Policy selects best-effort or reservation-capable behavior.
	Policy Policy
	// KMax is the reservation admission threshold; 0 derives it from the
	// utility function via kmax(C) = argmax k·π(C/k).
	KMax int
	// Arrivals and Holding define the flow dynamics.
	Arrivals Arrivals
	Holding  Holding
	// Horizon is the simulated duration; Warmup (< Horizon) is excluded
	// from all statistics.
	Horizon float64
	Warmup  float64
	// Samples is the paper's §5.1 S: a flow's performance is π at the
	// worst of S load observations (its arrival instant plus S−1 uniform
	// instants over its lifetime). Samples = 0 scores flows by their
	// time-average π instead.
	Samples int
	// Retry, if non-nil, makes rejected flows retry (Reservation only).
	Retry *RetryConfig
	// Seed1, Seed2 seed the deterministic random source.
	Seed1, Seed2 uint64
}

// Result reports a simulation run's measurements (post-warmup).
type Result struct {
	// Occupancy is the time-weighted distribution of concurrent admitted
	// flows, ready to feed into the analytical model.
	Occupancy *dist.Empirical
	// ArrivalLoad is the distribution of the load level seen by freshly
	// arriving flows (itself included) — a PASTA estimator of the paper's
	// size-biased "flow's-eye" distribution Q(k). For memoryless arrivals
	// it matches dist.NewSizeBiased of the stationary law.
	ArrivalLoad *dist.Empirical
	// AvgOccupancy is its mean.
	AvgOccupancy float64
	// MeanUtility is the average per-flow utility over all flows that
	// arrived after warmup (rejected flows contribute 0, retries their
	// penalties).
	MeanUtility float64
	// Flows counts flows arriving post-warmup; Admitted and Rejected
	// partition their final fates; Retries counts retry attempts.
	Flows    int
	Admitted int
	Rejected int
	Retries  int
	// BlockingRate is the per-attempt rejection rate.
	BlockingRate float64
	// PeakOccupancy is the largest concurrent flow count observed.
	PeakOccupancy int
	// ClassUtility and ClassFlows report per-class mean utilities and flow
	// counts when Config.Classes was set.
	ClassUtility []float64
	ClassFlows   []int
}

// flow carries per-flow measurement state.
type flow struct {
	arrivedAt float64
	attempts  int
	maxLoad   int
	class     int     // index into the class list (0 when homogeneous)
	utilAccum float64 // ∫ π dt reference at admission (time-average mode)
	counted   bool    // true if the flow arrived post-warmup
}

// Run executes one simulation and returns its measurements.
func Run(cfg Config) (Result, error) {
	if !(cfg.Capacity > 0) {
		return Result{}, fmt.Errorf("sim: capacity must be positive, got %g", cfg.Capacity)
	}
	var classes []FlowClass
	if len(cfg.Classes) > 0 {
		var err error
		classes, err = normalizeClasses(cfg.Classes)
		if err != nil {
			return Result{}, err
		}
		if cfg.Util == nil {
			mix, err := classMixture(classes)
			if err != nil {
				return Result{}, err
			}
			cfg.Util = mix
		}
	}
	if cfg.Util == nil || cfg.Arrivals == nil || cfg.Holding == nil {
		return Result{}, fmt.Errorf("sim: utility, arrivals and holding must be non-nil")
	}
	if !(cfg.Horizon > 0) || cfg.Warmup < 0 || cfg.Warmup >= cfg.Horizon {
		return Result{}, fmt.Errorf("sim: need 0 ≤ warmup < horizon, got warmup=%g horizon=%g", cfg.Warmup, cfg.Horizon)
	}
	if cfg.Samples < 0 {
		return Result{}, fmt.Errorf("sim: samples must be nonnegative, got %d", cfg.Samples)
	}
	if cfg.Retry != nil {
		if cfg.Policy != Reservation {
			return Result{}, fmt.Errorf("sim: retries only apply to the reservation policy")
		}
		if !(cfg.Retry.MeanBackoff > 0) || cfg.Retry.MaxAttempts < 1 || cfg.Retry.Penalty < 0 {
			return Result{}, fmt.Errorf("sim: invalid retry config %+v", *cfg.Retry)
		}
	}
	kmax := cfg.KMax
	if cfg.Policy == Reservation && kmax == 0 {
		k, ok := utility.KMax(cfg.Util, cfg.Capacity)
		if !ok {
			return Result{}, fmt.Errorf("sim: utility %q has no finite kmax; pass KMax explicitly", cfg.Util.Name())
		}
		kmax = k
	}
	if cfg.Policy == Reservation && kmax < 1 {
		return Result{}, fmt.Errorf("sim: reservation admits no flows at capacity %g", cfg.Capacity)
	}

	src := rng.New(cfg.Seed1, cfg.Seed2)
	eng := NewEngine()
	s := &simState{
		cfg:     cfg,
		classes: classes,
		kmax:    kmax,
		src:     src,
		eng:     eng,
		occLast: 0,
	}
	if len(classes) > 0 {
		s.piAccumClass = make([]float64, len(classes))
		s.utilSumClass = make([]float64, len(classes))
		s.flowsClass = make([]int, len(classes))
	}

	// Arrival pump: schedules itself forever (until the horizon stops it).
	var pump func()
	pump = func() {
		wait, batch := cfg.Arrivals.Next(src)
		eng.Schedule(wait, func() {
			for i := 0; i < batch; i++ {
				s.arrive(&flow{arrivedAt: eng.Now(), counted: eng.Now() >= cfg.Warmup})
			}
			pump()
		})
	}
	pump()
	eng.Run(cfg.Horizon)
	return s.result(), nil
}

// simState carries the mutable simulation state.
type simState struct {
	cfg     Config
	classes []FlowClass
	kmax    int
	src     *rng.Source
	eng     *Engine

	active    int
	occTime   []float64 // time-weighted occupancy histogram (post-warmup)
	arrCounts []float64 // load level seen at fresh arrivals (post-warmup)
	occLast   float64   // last time the occupancy changed (or warmup start)
	piAccum   float64   // ∫ π(C/n(t)) dt, for time-average flow utility
	// piAccumClass holds per-class ∫ π_i(C/(n·d_i)) dt in heterogeneous
	// runs; utilSumClass and flowsClass tally per-class outcomes.
	piAccumClass []float64
	utilSumClass []float64
	flowsClass   []int
	peak         int
	utilSum      float64
	flows        int
	admitted     int
	rejected     int
	retries      int
	attempts     int
}

// evalUtil returns the utility a flow of class ci derives from share b.
func (s *simState) evalUtil(ci int, b float64) float64 {
	if len(s.classes) == 0 {
		return s.cfg.Util.Eval(b)
	}
	c := s.classes[ci]
	return c.Util.Eval(b / c.Demand)
}

// advance accounts occupancy time up to now.
func (s *simState) advance() {
	now := s.eng.Now()
	start := s.occLast
	if start < s.cfg.Warmup {
		start = s.cfg.Warmup
	}
	if now > start {
		for len(s.occTime) <= s.active {
			s.occTime = append(s.occTime, 0)
		}
		s.occTime[s.active] += now - start
		if s.active > 0 {
			share := s.cfg.Capacity / float64(s.active)
			s.piAccum += (now - start) * s.cfg.Util.Eval(share)
			for i := range s.piAccumClass {
				s.piAccumClass[i] += (now - start) * s.evalUtil(i, share)
			}
		}
	}
	s.occLast = now
}

func (s *simState) setActive(n int) {
	s.advance()
	s.active = n
	if n > s.peak {
		s.peak = n
	}
}

// arrive handles one flow request (first attempt or retry).
func (s *simState) arrive(f *flow) {
	f.attempts++
	if f.attempts == 1 && len(s.classes) > 0 {
		f.class = pickClass(s.classes, s.src)
	}
	if f.counted {
		s.attempts++
		if f.attempts == 1 {
			s.flows++
			if len(s.classes) > 0 {
				s.flowsClass[f.class]++
			}
			// PASTA sample of the demand process: the load level this
			// flow experiences, itself included.
			level := s.active + 1
			for len(s.arrCounts) <= level {
				s.arrCounts = append(s.arrCounts, 0)
			}
			s.arrCounts[level]++
		}
	}
	if s.cfg.Policy == Reservation && s.active >= s.kmax {
		s.reject(f)
		return
	}
	s.admit(f)
}

func (s *simState) admit(f *flow) {
	if f.counted {
		s.admitted++
	}
	s.setActive(s.active + 1)
	f.maxLoad = s.active
	if len(s.classes) > 0 {
		f.utilAccum = s.piAccumClass[f.class]
	} else {
		f.utilAccum = s.piAccum
	}
	admittedAt := s.eng.Now()
	holding := s.cfg.Holding.Sample(s.src)
	// Extra load samples at uniform instants over the flow's lifetime
	// (§5.1): record the concurrent flow count at each.
	for i := 1; i < s.cfg.Samples; i++ {
		at := s.src.Float64() * holding
		s.eng.Schedule(at, func() {
			if s.active > f.maxLoad {
				f.maxLoad = s.active
			}
		})
	}
	s.eng.Schedule(holding, func() {
		s.depart(f, admittedAt)
	})
}

func (s *simState) depart(f *flow, admittedAt float64) {
	s.setActive(s.active - 1)
	if !f.counted {
		return
	}
	duration := s.eng.Now() - admittedAt
	var pi float64
	if s.cfg.Samples == 0 && duration > 0 {
		// Time-average performance over the flow's lifetime.
		accum := s.piAccum
		if len(s.classes) > 0 {
			accum = s.piAccumClass[f.class]
		}
		pi = (accum - f.utilAccum) / duration
	} else {
		// Worst-of-S-samples performance.
		pi = s.evalUtil(f.class, s.cfg.Capacity/float64(f.maxLoad))
	}
	score := pi - s.penalty(f)
	s.utilSum += score
	if len(s.classes) > 0 {
		s.utilSumClass[f.class] += score
	}
}

func (s *simState) reject(f *flow) {
	if s.cfg.Retry != nil && f.attempts < s.cfg.Retry.MaxAttempts {
		if f.counted {
			s.retries++
		}
		s.eng.Schedule(s.src.Exp(s.cfg.Retry.MeanBackoff), func() {
			s.arrive(f)
		})
		return
	}
	if f.counted {
		s.rejected++
		s.utilSum -= s.penalty(f)
		if len(s.classes) > 0 {
			s.utilSumClass[f.class] -= s.penalty(f)
		}
	}
}

// penalty returns the accumulated retry penalty α·(attempts − 1).
func (s *simState) penalty(f *flow) float64 {
	if s.cfg.Retry == nil || f.attempts <= 1 {
		return 0
	}
	return s.cfg.Retry.Penalty * float64(f.attempts-1)
}

func (s *simState) result() Result {
	s.advance() // account the final stretch up to the horizon
	res := Result{
		Flows:         s.flows,
		Admitted:      s.admitted,
		Rejected:      s.rejected,
		Retries:       s.retries,
		PeakOccupancy: s.peak,
	}
	if len(s.occTime) > 0 {
		if emp, err := dist.NewEmpirical(s.occTime); err == nil {
			res.Occupancy = emp
			res.AvgOccupancy = emp.Mean()
		}
	}
	if len(s.arrCounts) > 0 {
		if emp, err := dist.NewEmpirical(s.arrCounts); err == nil {
			res.ArrivalLoad = emp
		}
	}
	if s.flows > 0 {
		res.MeanUtility = s.utilSum / float64(s.flows)
	}
	if s.attempts > 0 {
		blocked := s.attempts - s.admitted
		res.BlockingRate = float64(blocked) / float64(s.attempts)
	}
	if len(s.classes) > 0 {
		res.ClassFlows = append([]int(nil), s.flowsClass...)
		res.ClassUtility = make([]float64, len(s.classes))
		for i, sum := range s.utilSumClass {
			if s.flowsClass[i] > 0 {
				res.ClassUtility[i] = sum / float64(s.flowsClass[i])
			}
		}
	}
	return res
}
