package sim

import (
	"math"
	"testing"

	"beqos/internal/core"
	"beqos/internal/dist"
	"beqos/internal/utility"
)

func rigidFn(t testing.TB) utility.Function {
	t.Helper()
	r, err := utility.NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// mm1inf returns a Config for an M/M/∞-style run with offered load
// rate·holdMean.
func mmInfConfig(t testing.TB, capacity float64, policy Policy, seed uint64) Config {
	t.Helper()
	arr, err := NewPoissonArrivals(10)
	if err != nil {
		t.Fatal(err)
	}
	hold, err := NewExpHolding(10)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Capacity: capacity,
		Util:     rigidFn(t),
		Policy:   policy,
		Arrivals: arr,
		Holding:  hold,
		Horizon:  30000,
		Warmup:   500,
		Samples:  1,
		Seed1:    seed,
		Seed2:    seed + 1,
	}
}

func TestRunValidation(t *testing.T) {
	good := mmInfConfig(t, 150, BestEffort, 1)
	bad := good
	bad.Capacity = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero capacity should fail")
	}
	bad = good
	bad.Util = nil
	if _, err := Run(bad); err == nil {
		t.Error("nil utility should fail")
	}
	bad = good
	bad.Warmup = bad.Horizon
	if _, err := Run(bad); err == nil {
		t.Error("warmup ≥ horizon should fail")
	}
	bad = good
	bad.Samples = -1
	if _, err := Run(bad); err == nil {
		t.Error("negative samples should fail")
	}
	bad = good
	bad.Retry = &RetryConfig{MeanBackoff: 1, MaxAttempts: 3}
	if _, err := Run(bad); err == nil {
		t.Error("retry with best-effort should fail")
	}
	bad = mmInfConfig(t, 150, Reservation, 1)
	bad.Retry = &RetryConfig{MeanBackoff: 0, MaxAttempts: 3}
	if _, err := Run(bad); err == nil {
		t.Error("zero backoff should fail")
	}
	bad = mmInfConfig(t, 0.5, Reservation, 1)
	if _, err := Run(bad); err == nil {
		t.Error("reservation admitting nobody should fail")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run(mmInfConfig(t, 150, BestEffort, 42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mmInfConfig(t, 150, BestEffort, 42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Flows != b.Flows || a.MeanUtility != b.MeanUtility || a.AvgOccupancy != b.AvgOccupancy {
		t.Errorf("same seed gave different results: %+v vs %+v", a, b)
	}
	if a.Events != b.Events || a.ArenaPeak != b.ArenaPeak {
		t.Errorf("engine footprint differs between identical runs: (%d, %d) vs (%d, %d)",
			a.Events, a.ArenaPeak, b.Events, b.ArenaPeak)
	}
	// The footprint counters must be coherent with the run itself: at least
	// one event per flow dispatched, and an arena at least as large as the
	// peak concurrency it had to hold.
	if a.Events < uint64(a.Flows) {
		t.Errorf("events = %d < flows = %d", a.Events, a.Flows)
	}
	if a.ArenaPeak < a.PeakOccupancy {
		t.Errorf("arena peak %d < peak occupancy %d", a.ArenaPeak, a.PeakOccupancy)
	}
}

func TestMMInfOccupancyIsPoisson(t *testing.T) {
	// Poisson arrivals (rate 10) with exponential holding (mean 10) give
	// M/M/∞: stationary occupancy Poisson with mean 100.
	res, err := Run(mmInfConfig(t, 1e9, BestEffort, 7))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AvgOccupancy-100) > 2 {
		t.Errorf("mean occupancy = %v, want ≈ 100", res.AvgOccupancy)
	}
	// Poisson: variance ≈ mean.
	variance := res.Occupancy.SquareTailMean(-1) - res.AvgOccupancy*res.AvgOccupancy
	if math.Abs(variance-100) > 12 {
		t.Errorf("occupancy variance = %v, want ≈ 100 (Poisson)", variance)
	}
	// CDF sup-distance against the exact Poisson law.
	want, err := dist.NewPoisson(100)
	if err != nil {
		t.Fatal(err)
	}
	var sup float64
	for k := 50; k <= 150; k++ {
		if d := math.Abs(res.Occupancy.CDF(k) - want.CDF(k)); d > sup {
			sup = d
		}
	}
	if sup > 0.03 {
		t.Errorf("occupancy CDF sup-distance from Poisson = %v", sup)
	}
}

func TestReservationNeverExceedsKMax(t *testing.T) {
	cfg := mmInfConfig(t, 100, Reservation, 9)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakOccupancy > 100 {
		t.Errorf("peak occupancy %d exceeds kmax 100", res.PeakOccupancy)
	}
	if res.Rejected == 0 {
		t.Error("an M/M/100/100 system at offered load 100 must block sometimes")
	}
}

// erlangB returns the Erlang-B blocking probability for offered load a over
// c circuits, via the standard recurrence.
func erlangB(a float64, c int) float64 {
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b
}

func TestReservationBlockingMatchesErlangB(t *testing.T) {
	// With rigid b̂ = 1 and capacity 100, the reservation link is
	// M/M/100/100 at offered load 100; blocking follows Erlang B ≈ 0.0757.
	cfg := mmInfConfig(t, 100, Reservation, 21)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := erlangB(100, 100)
	if math.Abs(res.BlockingRate-want) > 0.012 {
		t.Errorf("blocking = %v, Erlang B = %v", res.BlockingRate, want)
	}
}

func TestBestEffortUtilityMatchesAnalyticModel(t *testing.T) {
	// The measured per-flow utility under Poisson dynamics should track
	// the analytical B(C) with a Poisson load (the paper's static-load
	// approximation); with S = 1 the model's size-biased per-flow view is
	// exactly what the simulation measures at arrival instants.
	load, err := dist.NewPoisson(100)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(load, rigidFn(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{90, 110, 130} {
		res, err := Run(mmInfConfig(t, c, BestEffort, 33))
		if err != nil {
			t.Fatal(err)
		}
		want := m.BestEffort(c)
		if math.Abs(res.MeanUtility-want) > 0.03 {
			t.Errorf("C=%g: simulated utility %v vs model B(C) %v", c, res.MeanUtility, want)
		}
	}
}

func TestReservationUtilityMatchesAnalyticModel(t *testing.T) {
	load, err := dist.NewPoisson(100)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(load, rigidFn(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{90, 120} {
		res, err := Run(mmInfConfig(t, c, Reservation, 55))
		if err != nil {
			t.Fatal(err)
		}
		want := m.Reservation(c)
		// The static-load model clips overloads (E[(k−kmax)+]) while the
		// dynamic loss system blocks at the Erlang-B rate, which is
		// somewhat larger; the simulated utility therefore sits slightly
		// below R(C). (Quantified in EXPERIMENTS.md.)
		if res.MeanUtility > want+0.01 {
			t.Errorf("C=%g: simulated utility %v above static model R(C) %v", c, res.MeanUtility, want)
		}
		if math.Abs(res.MeanUtility-want) > 0.05 {
			t.Errorf("C=%g: simulated utility %v vs model R(C) %v", c, res.MeanUtility, want)
		}
	}
}

func TestSimulatedOccupancyFeedsModel(t *testing.T) {
	// End-to-end: run the simulator, feed the measured stationary
	// distribution into the analytical model, and compare against the
	// exact Poisson prediction.
	res, err := Run(mmInfConfig(t, 1e9, BestEffort, 77))
	if err != nil {
		t.Fatal(err)
	}
	mSim, err := core.New(res.Occupancy, rigidFn(t))
	if err != nil {
		t.Fatal(err)
	}
	load, err := dist.NewPoisson(100)
	if err != nil {
		t.Fatal(err)
	}
	mExact, err := core.New(load, rigidFn(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{80, 100, 120} {
		bs, be := mSim.BestEffort(c), mExact.BestEffort(c)
		if math.Abs(bs-be) > 0.03 {
			t.Errorf("C=%g: B from simulated load %v vs exact %v", c, bs, be)
		}
	}
}

func TestHeavyTailSessionsOverdispersed(t *testing.T) {
	// Pareto session batches produce occupancy with variance well above
	// the mean — the qualitative regime where the paper's algebraic
	// distribution lives and reservations retain an advantage.
	arr, err := NewSessionArrivals(2, 2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	hold, err := NewExpHolding(8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Capacity: 1e9,
		Util:     rigidFn(t),
		Policy:   BestEffort,
		Arrivals: arr,
		Holding:  hold,
		Horizon:  40000,
		Warmup:   1000,
		Samples:  1,
		Seed1:    101,
		Seed2:    102,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mean := res.AvgOccupancy
	variance := res.Occupancy.SquareTailMean(-1) - mean*mean
	if variance < 2*mean {
		t.Errorf("session occupancy variance %v not overdispersed vs mean %v", variance, mean)
	}
}

func TestRetrySimulation(t *testing.T) {
	// Mild blocking regime: capacity above the mean load, so retries
	// recover nearly all rejections at small total penalty.
	cfg := mmInfConfig(t, 110, Reservation, 13)
	cfg.Retry = &RetryConfig{MeanBackoff: 5, Penalty: 0.1, MaxAttempts: 50}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 {
		t.Error("a loss system at ~3% Erlang blocking must trigger retries")
	}
	if frac := float64(res.Rejected) / float64(res.Flows); frac > 0.005 {
		t.Errorf("final rejection fraction = %v, want ≈ 0", frac)
	}
	noRetry, err := Run(mmInfConfig(t, 110, Reservation, 13))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanUtility <= noRetry.MeanUtility {
		t.Errorf("retry utility %v should exceed no-retry %v at modest penalty",
			res.MeanUtility, noRetry.MeanUtility)
	}
}

func TestRetryStormDestroysUtility(t *testing.T) {
	// Undersized capacity (kmax < k̄) with impatient retries: blocked
	// flows hammer the link, attempts pile up, and per-flow penalties
	// swamp the recovered utility — the dynamic face of the paper's
	// retry-storm caveat.
	cfg := mmInfConfig(t, 95, Reservation, 13)
	cfg.Horizon = 10000
	cfg.Retry = &RetryConfig{MeanBackoff: 5, Penalty: 0.1, MaxAttempts: 50}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	noRetry, err := Run(mmInfConfig(t, 95, Reservation, 14))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanUtility >= noRetry.MeanUtility {
		t.Errorf("storm utility %v should fall below no-retry %v", res.MeanUtility, noRetry.MeanUtility)
	}
	if avg := float64(res.Retries) / float64(res.Flows); avg < 2 {
		t.Errorf("retries per flow = %v, expected a storm (≫ 1)", avg)
	}
}

func TestSamplingWorsensUtility(t *testing.T) {
	// Judging flows by the worst of S samples lowers measured utility.
	cfgA := mmInfConfig(t, 105, BestEffort, 17)
	cfgA.Samples = 1
	a, err := Run(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	cfgB := mmInfConfig(t, 105, BestEffort, 17)
	cfgB.Samples = 10
	b, err := Run(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if b.MeanUtility >= a.MeanUtility {
		t.Errorf("S=10 utility %v should be below S=1 utility %v", b.MeanUtility, a.MeanUtility)
	}
}

func TestTimeAverageUtilityMode(t *testing.T) {
	cfg := mmInfConfig(t, 105, BestEffort, 19)
	cfg.Samples = 0
	cfg.Util = utility.NewAdaptive()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.MeanUtility > 0 && res.MeanUtility < 1) {
		t.Errorf("time-average utility out of range: %v", res.MeanUtility)
	}
}

func TestPolicyString(t *testing.T) {
	if BestEffort.String() != "best-effort" || Reservation.String() != "reservation" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy should still render")
	}
}

func TestArrivalLoadIsPASTASizeBiased(t *testing.T) {
	// By PASTA, arrivals see the stationary occupancy; counting the
	// arriving flow itself, the experienced level matches the size-biased
	// view of the stationary Poisson law (which for Poisson is a unit
	// shift).
	res, err := Run(mmInfConfig(t, 1e9, BestEffort, 91))
	if err != nil {
		t.Fatal(err)
	}
	if res.ArrivalLoad == nil {
		t.Fatal("no arrival-load histogram")
	}
	base, err := dist.NewPoisson(100)
	if err != nil {
		t.Fatal(err)
	}
	want, err := dist.NewSizeBiased(base)
	if err != nil {
		t.Fatal(err)
	}
	if mean := res.ArrivalLoad.Mean(); math.Abs(mean-want.Mean()) > 2 {
		t.Errorf("arrival-load mean = %v, size-biased mean = %v", mean, want.Mean())
	}
	var sup float64
	for k := 60; k <= 140; k++ {
		if d := math.Abs(res.ArrivalLoad.CDF(k) - want.CDF(k)); d > sup {
			sup = d
		}
	}
	if sup > 0.03 {
		t.Errorf("arrival-load CDF sup-distance from size-biased = %v", sup)
	}
}

func TestHeterogeneousClasses(t *testing.T) {
	// Two classes at ~equal weight: standard rigid flows and "fat" rigid
	// flows needing twice the share. Per-class utilities must differ and
	// match the analytical per-class prediction E_Q[π_i(C/(k·d_i))].
	rigid := rigidFn(t)
	cfg := mmInfConfig(t, 150, BestEffort, 23)
	cfg.Util = nil
	cfg.Classes = []FlowClass{
		{Weight: 1, Util: rigid, Demand: 1},
		{Weight: 1, Util: rigid, Demand: 2},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ClassUtility) != 2 || len(res.ClassFlows) != 2 {
		t.Fatalf("missing per-class results: %+v", res)
	}
	if res.ClassFlows[0]+res.ClassFlows[1] != res.Flows {
		t.Errorf("class flows %v do not sum to %d", res.ClassFlows, res.Flows)
	}
	// Roughly equal class split.
	frac := float64(res.ClassFlows[0]) / float64(res.Flows)
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("class split = %v, want ≈ 0.5", frac)
	}
	// Thin flows do better than fat flows at C = 1.5k̄.
	if !(res.ClassUtility[0] > res.ClassUtility[1]) {
		t.Errorf("class utilities %v: thin flows should beat fat flows", res.ClassUtility)
	}
	// Analytical cross-check: class i behaves like a rigid utility with
	// demand d_i under the Poisson load.
	load, err := dist.NewPoisson(100)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range []float64{1, 2} {
		scaled, err := utility.NewRigid(d)
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.New(load, scaled)
		if err != nil {
			t.Fatal(err)
		}
		want := m.BestEffort(150)
		if math.Abs(res.ClassUtility[i]-want) > 0.04 {
			t.Errorf("class %d utility = %v, model predicts %v", i, res.ClassUtility[i], want)
		}
	}
}

func TestHeterogeneousClassesReservation(t *testing.T) {
	// With classes and no explicit Util, kmax comes from the population
	// mixture.
	rigid := rigidFn(t)
	cfg := mmInfConfig(t, 110, Reservation, 29)
	cfg.Util = nil
	cfg.Classes = []FlowClass{
		{Weight: 3, Util: rigid, Demand: 1},
		{Weight: 1, Util: utility.NewAdaptive(), Demand: 1},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakOccupancy > 110 {
		t.Errorf("peak %d exceeds mixture kmax 110", res.PeakOccupancy)
	}
	if res.ClassUtility[0] <= 0 || res.ClassUtility[1] <= 0 {
		t.Errorf("class utilities %v should be positive", res.ClassUtility)
	}
}

func TestHeterogeneousClassValidation(t *testing.T) {
	cfg := mmInfConfig(t, 100, BestEffort, 1)
	cfg.Util = nil
	cfg.Classes = []FlowClass{{Weight: 0, Util: rigidFn(t)}}
	if _, err := Run(cfg); err == nil {
		t.Error("zero class weight should fail")
	}
	cfg.Classes = []FlowClass{{Weight: 1, Util: nil}}
	if _, err := Run(cfg); err == nil {
		t.Error("nil class utility should fail")
	}
	cfg.Classes = []FlowClass{{Weight: 1, Util: rigidFn(t), Demand: -1}}
	if _, err := Run(cfg); err == nil {
		t.Error("negative demand should fail")
	}
}

func TestHeterogeneousTimeAverageMode(t *testing.T) {
	cfg := mmInfConfig(t, 120, BestEffort, 31)
	cfg.Samples = 0
	cfg.Util = nil
	cfg.Classes = []FlowClass{
		{Weight: 1, Util: utility.NewAdaptive(), Demand: 1},
		{Weight: 1, Util: utility.NewAdaptive(), Demand: 3},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.ClassUtility[0] > res.ClassUtility[1]) {
		t.Errorf("time-average class utilities %v: low-demand class should win", res.ClassUtility)
	}
	for i, u := range res.ClassUtility {
		if u <= 0 || u > 1 {
			t.Errorf("class %d time-average utility out of range: %v", i, u)
		}
	}
}

func TestMGInfInsensitivity(t *testing.T) {
	// M/G/∞ insensitivity: with Poisson arrivals, even heavy-tailed
	// (Pareto) holding times leave the stationary occupancy Poisson — the
	// load *process* must be non-Poisson (e.g. session batches) to produce
	// the paper's algebraic loads. This validates the paper's focus on the
	// load distribution rather than holding-time shapes.
	hold, err := NewParetoHolding(10.0/3, 1.5) // mean 10
	if err != nil {
		t.Fatal(err)
	}
	arr, err := NewPoissonArrivals(10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Capacity: 1e9,
		Util:     rigidFn(t),
		Policy:   BestEffort,
		Arrivals: arr,
		Holding:  hold,
		Horizon:  60000,
		Warmup:   5000, // long warmup: heavy tails converge slowly
		Samples:  1,
		Seed1:    41,
		Seed2:    42,
	})
	if err != nil {
		t.Fatal(err)
	}
	mean := res.AvgOccupancy
	variance := res.Occupancy.SquareTailMean(-1) - mean*mean
	if math.Abs(mean-100) > 6 {
		t.Errorf("M/G/∞ mean occupancy = %v, want ≈ 100", mean)
	}
	// Poisson-like: variance/mean ≈ 1 (tolerant: heavy-tailed holding
	// mixes slowly).
	if ratio := variance / mean; ratio < 0.7 || ratio > 1.6 {
		t.Errorf("M/G/∞ variance/mean = %v, want ≈ 1 (insensitivity)", ratio)
	}
}

func TestParetoHoldingMoments(t *testing.T) {
	h, err := NewParetoHolding(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3.0; math.Abs(h.Mean()-want) > 1e-12 {
		t.Errorf("mean = %v, want %v", h.Mean(), want)
	}
	if _, err := NewParetoHolding(0, 2); err == nil {
		t.Error("zero scale should fail")
	}
	if _, err := NewParetoHolding(1, 1); err == nil {
		t.Error("shape ≤ 1 should fail")
	}
}

func TestRunReplications(t *testing.T) {
	cfg := mmInfConfig(t, 110, Reservation, 3)
	cfg.Horizon = 4000
	cfg.Warmup = 200
	rep, err := RunReplications(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AvgOccupancy.N != 5 {
		t.Errorf("N = %d", rep.AvgOccupancy.N)
	}
	if math.Abs(rep.AvgOccupancy.Mean-100) > 5 {
		t.Errorf("occupancy = %v", rep.AvgOccupancy.Mean)
	}
	if rep.AvgOccupancy.StdErr <= 0 || rep.AvgOccupancy.StdErr > 5 {
		t.Errorf("stderr = %v", rep.AvgOccupancy.StdErr)
	}
	// Blocking at C = 110 under Erlang B ≈ 0.028; the CI should cover it.
	want := erlangB(100, 110)
	if math.Abs(rep.BlockingRate.Mean-want) > 4*rep.BlockingRate.StdErr+0.01 {
		t.Errorf("blocking %v ± %v vs Erlang B %v", rep.BlockingRate.Mean, rep.BlockingRate.StdErr, want)
	}
	if rep.MeanUtility.String() == "" {
		t.Error("empty summary string")
	}
	if _, err := RunReplications(cfg, 1); err == nil {
		t.Error("n = 1 should fail")
	}
}
