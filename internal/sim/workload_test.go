package sim

import (
	"math"
	"strings"
	"testing"

	"beqos/internal/utility"
	"beqos/internal/workload"
)

const simWorkloadSpec = `scenario simwl
prefill 50
warmup 5
phase steady 45
arrivals poisson rate=50
holding exp mean=1
phase crowd 20
arrivals poisson rate=50
holding exp mean=1
event flash at=2 mult=4 width=10
phase tail 15
arrivals gamma rate=30 cv=2
holding pareto mean=1 shape=2
`

func parseSpec(t *testing.T, text string) *workload.Scenario {
	t.Helper()
	s, err := workload.Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func TestWorkloadRunBestEffort(t *testing.T) {
	scn := parseSpec(t, simWorkloadSpec)
	cfg := Config{
		Capacity: 100,
		Util:     utility.NewAdaptive(),
		Policy:   BestEffort,
		Workload: scn,
		Seed1:    1, Seed2: 2,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Flows == 0 || res.Rejected != 0 || res.Admitted != res.Flows {
		t.Fatalf("best-effort workload run: %+v", res)
	}
	if len(res.PhaseFlows) != 3 {
		t.Fatalf("want 3 phase tallies, got %v", res.PhaseFlows)
	}
	total := 0
	for i, n := range res.PhaseFlows {
		total += n
		if res.PhaseAdmitted[i]+res.PhaseRejected[i] != n {
			t.Fatalf("phase %d fates don't partition: %d + %d != %d",
				i, res.PhaseAdmitted[i], res.PhaseRejected[i], n)
		}
	}
	if total != res.Flows {
		t.Fatalf("phase tallies sum to %d, res.Flows %d", total, res.Flows)
	}
	// The flash crowd quadruples the rate for half the crowd phase: its
	// per-time arrival count must clearly exceed the steady phase's.
	steadyRate := float64(res.PhaseFlows[0]) / (45 - 5) // warmup eats 5 of phase 0
	crowdRate := float64(res.PhaseFlows[1]) / 20
	if crowdRate < 1.5*steadyRate {
		t.Fatalf("flash crowd not visible: steady %.1f/s vs crowd %.1f/s", steadyRate, crowdRate)
	}
}

func TestWorkloadRunReservation(t *testing.T) {
	scn := parseSpec(t, simWorkloadSpec)
	cfg := Config{
		Capacity: 60,
		Util:     utility.NewAdaptive(),
		Policy:   Reservation,
		KMax:     60,
		Workload: scn,
		Seed1:    3, Seed2: 4,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Rejected == 0 {
		t.Fatal("a flash crowd over kmax=60 must reject some flows")
	}
	// Rejections should concentrate in the crowd phase.
	if res.PhaseRejected[1] <= res.PhaseRejected[0] {
		t.Fatalf("crowd-phase rejections %d not above steady %d", res.PhaseRejected[1], res.PhaseRejected[0])
	}
}

// TestWorkloadStationaryOccupancy cross-checks the workload-driven
// simulator against M/M/∞: a stationary Poisson scenario's average
// occupancy under best-effort must sit within a few standard errors of
// the offered mean.
func TestWorkloadStationaryOccupancy(t *testing.T) {
	scn := parseSpec(t, `scenario stat
prefill 40
warmup 10
phase only 410
arrivals poisson rate=40
holding exp mean=1
`)
	cfg := Config{
		Capacity: 100,
		Util:     utility.NewAdaptive(),
		Policy:   BestEffort,
		Workload: scn,
		Seed1:    7, Seed2: 8,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Var of the time-average of an M/M/∞ population over T ≫ hold is
	// ≈ 2·k̄·hold/T; 40·2/400 → σ ≈ 0.45. Allow 5σ.
	if math.Abs(res.AvgOccupancy-40) > 2.5 {
		t.Fatalf("stationary occupancy %g, want ≈ 40", res.AvgOccupancy)
	}
}

func TestWorkloadClassesAndMixture(t *testing.T) {
	scn := parseSpec(t, `scenario mix
prefill 20
warmup 2
class big weight=1 demand=2
class small weight=3
phase p 42
arrivals poisson rate=20
holding exp mean=1
`)
	cfg := Config{
		Capacity: 50,
		Util:     utility.NewAdaptive(),
		Policy:   BestEffort,
		Workload: scn,
		Seed1:    5, Seed2: 6,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.ClassFlows) != 2 {
		t.Fatalf("want 2 class tallies, got %v", res.ClassFlows)
	}
	frac := float64(res.ClassFlows[1]) / float64(res.ClassFlows[0]+res.ClassFlows[1])
	if math.Abs(frac-0.75) > 0.08 {
		t.Fatalf("class mixture off: small fraction %g, want ≈ 0.75", frac)
	}
}

func TestWorkloadConfigValidation(t *testing.T) {
	scn := parseSpec(t, "scenario v\nphase p 2\narrivals poisson rate=1\nholding exp mean=1\n")
	base := Config{
		Capacity: 10,
		Util:     utility.NewAdaptive(),
		Workload: scn,
		Seed1:    1, Seed2: 2,
	}
	arr, _ := NewPoissonArrivals(1)
	hold, _ := NewExpHolding(1)

	bad := base
	bad.Arrivals = arr
	bad.Holding = hold
	if _, err := Run(bad); err == nil || !strings.Contains(err.Error(), "replaces") {
		t.Fatalf("Workload + Arrivals accepted: %v", err)
	}
	bad = base
	bad.Classes = []FlowClass{{Weight: 1, Util: utility.NewAdaptive(), Demand: 1}}
	if _, err := Run(bad); err == nil || !strings.Contains(err.Error(), "class mixture") {
		t.Fatalf("Workload + Classes accepted: %v", err)
	}
	bad = base
	bad.Util = nil
	if _, err := Run(bad); err == nil {
		t.Fatal("workload run without Util accepted")
	}
	if _, err := Run(base); err != nil {
		t.Fatalf("valid workload config rejected: %v", err)
	}
}

// TestWorkloadReplicationsDeterministic is the parallel-vs-sequential leg
// of the golden-determinism contract: replicated workload runs must be
// byte-identical for every worker count, and each replicate's arrival
// trace must equal the trace of a directly substream-seeded stream.
func TestWorkloadReplicationsDeterministic(t *testing.T) {
	scn := parseSpec(t, simWorkloadSpec)
	cfg := Config{
		Capacity: 80,
		Util:     utility.NewAdaptive(),
		Policy:   Reservation,
		KMax:     80,
		Workload: scn,
		Seed1:    11, Seed2: 12,
	}
	seq, err := RunReplicationsWorkers(cfg, 4, 1)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := RunReplicationsWorkers(cfg, 4, 4)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if seq != par {
		t.Fatalf("replication summaries differ:\nseq %+v\npar %+v", seq, par)
	}
}
