// Package sweep is the parallel grid-evaluation engine behind the figure
// harness and the CLI sweeps. It maps a grid of inputs (capacities, prices,
// model configurations) through a pure evaluation function on a bounded
// worker pool, preserving input order in the output, so a parallel sweep
// emits rows byte-identical to a sequential one.
//
// The engine assumes the evaluation function is safe for concurrent use;
// core.Model, core.Sampling and core.Retry all satisfy that contract.
package sweep

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach calls fn(i) for every i in [0, n) using up to workers goroutines
// (workers ≤ 0 means runtime.GOMAXPROCS(0)). Indices are claimed atomically,
// so scheduling is dynamic but each index runs exactly once. The first error
// (preferring the lowest index among those observed) cancels the remaining
// work and is returned; ctx cancellation likewise stops the pool.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		mu       sync.Mutex
		firstErr error
		errIdx   int
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil || i < errIdx {
						firstErr, errIdx = err, i
					}
					mu.Unlock()
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Map evaluates fn over xs on a bounded worker pool and returns the results
// in input order. Because fn is required to be pure (same input, same
// output, no observable side effects), the result slice is bit-identical to
// a sequential evaluation regardless of worker count or scheduling.
func Map[X, R any](ctx context.Context, workers int, xs []X, fn func(X) (R, error)) ([]R, error) {
	out := make([]R, len(xs))
	err := ForEach(ctx, workers, len(xs), func(i int) error {
		r, err := fn(xs[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Grid returns the arithmetic grid {lo, lo+step, …} up to and including hi
// (within half a step of floating-point slack, matching a simple
// `for c := lo; c <= hi; c += step` loop). It returns nil when step ≤ 0 or
// hi < lo.
func Grid(lo, hi, step float64) []float64 {
	if !(step > 0) || hi < lo {
		return nil
	}
	var out []float64
	for c := lo; c <= hi; c += step {
		out = append(out, c)
	}
	return out
}

// LogGrid returns n log-spaced points from lo to hi inclusive. It guards
// the degenerate cases: n < 2 (or lo == hi) yields the single point lo, so
// shrunken quick-mode grids can never divide by zero.
func LogGrid(lo, hi float64, n int) []float64 {
	if n < 2 || lo == hi {
		return []float64{lo}
	}
	out := make([]float64, n)
	for i := range out {
		frac := float64(i) / float64(n-1)
		out[i] = lo * math.Pow(hi/lo, frac)
	}
	return out
}
