package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		counts := make([]atomic.Int32, n)
		err := ForEach(context.Background(), workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

// TestMapDeterministic is the engine's core guarantee: for a pure function,
// the result slice is bit-identical to a sequential evaluation regardless of
// worker count.
func TestMapDeterministic(t *testing.T) {
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 0.1 + float64(i)
	}
	fn := func(x float64) (float64, error) {
		return math.Sqrt(x) * math.Log1p(x) / (1 + x*x), nil
	}
	want, err := Map(context.Background(), 1, xs, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 16} {
		got, err := Map(context.Background(), workers, xs, fn)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("workers=%d: out[%d] = %v, sequential %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	xs := make([]int, 257)
	for i := range xs {
		xs[i] = i
	}
	out, err := Map(context.Background(), 8, xs, func(x int) (int, error) { return 3 * x, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 3*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, 3*i)
		}
	}
}

// TestForEachErrorWins checks that an error cancels the pool and that the
// lowest-index error among those observed is the one returned.
func TestForEachErrorWins(t *testing.T) {
	n := 64
	var ran atomic.Int32
	err := ForEach(context.Background(), 4, n, func(i int) error {
		ran.Add(1)
		if i >= 10 {
			return fmt.Errorf("fail at %d", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	var idx int
	if _, scanErr := fmt.Sscanf(err.Error(), "fail at %d", &idx); scanErr != nil {
		t.Fatalf("unexpected error %q", err)
	}
	// With 4 workers, the error from one of the first few failing indices
	// must win; indices far beyond the failure point never run.
	if idx >= 20 {
		t.Errorf("returned error from index %d, want one near the first failure", idx)
	}
	if got := int(ran.Load()); got == n {
		t.Errorf("all %d indices ran despite early failure", n)
	}
}

func TestForEachContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := ForEach(ctx, 1, 10, func(i int) error { calls++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Errorf("fn ran %d times after cancellation", calls)
	}
}

func TestMapErrorReturnsNil(t *testing.T) {
	out, err := Map(context.Background(), 2, []int{1, 2, 3}, func(x int) (int, error) {
		if x == 2 {
			return 0, errors.New("boom")
		}
		return x, nil
	})
	if err == nil || out != nil {
		t.Fatalf("got (%v, %v), want (nil, error)", out, err)
	}
}

// TestGridMatchesLoop pins Grid to the plain accumulation loop it replaces,
// including its floating-point stepping behavior.
func TestGridMatchesLoop(t *testing.T) {
	cases := []struct{ lo, hi, step float64 }{
		{10, 1000, 10},
		{100, 1000, 100},
		{50, 1000, 50},
		{0.1, 1, 0.1},
		{5, 5, 1},
	}
	for _, cse := range cases {
		var want []float64
		for c := cse.lo; c <= cse.hi; c += cse.step {
			want = append(want, c)
		}
		got := Grid(cse.lo, cse.hi, cse.step)
		if len(got) != len(want) {
			t.Fatalf("Grid(%v, %v, %v): %d points, want %d", cse.lo, cse.hi, cse.step, len(got), len(want))
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("Grid(%v, %v, %v)[%d] = %v, want %v", cse.lo, cse.hi, cse.step, i, got[i], want[i])
			}
		}
	}
	if got := Grid(10, 5, 1); got != nil {
		t.Errorf("Grid(10, 5, 1) = %v, want nil", got)
	}
	if got := Grid(0, 10, 0); got != nil {
		t.Errorf("Grid with step 0 = %v, want nil", got)
	}
}

func TestLogGrid(t *testing.T) {
	got := LogGrid(1e-3, 0.6, 10)
	if len(got) != 10 {
		t.Fatalf("len = %d, want 10", len(got))
	}
	if got[0] != 1e-3 {
		t.Errorf("first = %v, want 1e-3", got[0])
	}
	if math.Abs(got[9]-0.6) > 1e-15 {
		t.Errorf("last = %v, want 0.6", got[9])
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("not increasing at %d: %v then %v", i, got[i-1], got[i])
		}
	}
	// Ratios are constant on a log grid.
	r := got[1] / got[0]
	for i := 2; i < len(got); i++ {
		if math.Abs(got[i]/got[i-1]-r) > 1e-12 {
			t.Errorf("ratio drifts at %d", i)
		}
	}
}

// TestLogGridDegenerate pins the quick-mode guard: tiny grids must never
// divide by zero or emit NaN.
func TestLogGridDegenerate(t *testing.T) {
	for _, n := range []int{-1, 0, 1} {
		got := LogGrid(0.05, 0.6, n)
		if len(got) != 1 || got[0] != 0.05 {
			t.Fatalf("LogGrid(n=%d) = %v, want [0.05]", n, got)
		}
	}
	got := LogGrid(0.3, 0.3, 5)
	if len(got) != 1 || got[0] != 0.3 {
		t.Fatalf("LogGrid(lo==hi) = %v, want [0.3]", got)
	}
	for _, v := range LogGrid(1e-3, 0.6, 3) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite grid point %v", v)
		}
	}
}
