package utility

import (
	"fmt"
	"math"
	"sync"

	"beqos/internal/numeric"
)

// Rigid is the rigid (circuit-style) utility of the paper's equation 1:
// the application needs exactly Bhat units of bandwidth, delivers full value
// at or above it and none below it. Traditional telephony is the motivating
// example.
type Rigid struct {
	// Bhat is the bandwidth requirement b̂; the paper uses b̂ = 1.
	Bhat float64
}

// NewRigid returns the rigid utility with requirement bhat > 0.
func NewRigid(bhat float64) (Rigid, error) {
	if !(bhat > 0) {
		return Rigid{}, fmt.Errorf("utility: rigid requirement must be positive, got %g", bhat)
	}
	return Rigid{Bhat: bhat}, nil
}

// Name implements Function.
func (r Rigid) Name() string { return "rigid" }

// Eval returns 0 below b̂ and 1 at or above it.
func (r Rigid) Eval(b float64) float64 {
	if b >= r.Bhat {
		return 1
	}
	return 0
}

// KMax returns ⌊C/b̂⌋: admit as many flows as can each be given b̂.
func (r Rigid) KMax(c float64) (int, bool) {
	if c < r.Bhat {
		return 0, true
	}
	return int(math.Floor(c / r.Bhat)), true
}

// Adaptive is the paper's equation 2, modeling rate- and delay-adaptive
// audio/video:
//
//	π(b) = 1 − exp(−b²/(κ+b))
//
// Small bandwidths are nearly useless (convex near 0, π(b) ≈ b²/κ), high
// bandwidths saturate (π(b) ≈ 1 − e^(−b)), and marginal utility peaks in
// between.
type Adaptive struct {
	// Kappa is the shape constant κ.
	Kappa float64
}

var (
	kappaOnce sync.Once
	kappaStar float64
)

// KappaStar returns the κ for which kmax(C) = C, i.e. the solution of the
// stationarity condition π(1) = π′(1). The paper reports 0.62086.
func KappaStar() float64 {
	kappaOnce.Do(func() {
		g := func(kappa float64) float64 {
			a := Adaptive{Kappa: kappa}
			return a.Eval(1) - a.Deriv(1)
		}
		k, err := numeric.Brent(g, 1e-6, 10, 1e-14)
		if err != nil {
			panic("utility: κ* calibration failed: " + err.Error())
		}
		kappaStar = k
	})
	return kappaStar
}

// NewAdaptive returns the paper's adaptive utility with κ = κ* ≈ 0.62086,
// calibrated so that kmax(C) = C (facilitating comparison with the rigid
// case, which also has kmax(C) = C).
func NewAdaptive() Adaptive {
	return Adaptive{Kappa: KappaStar()}
}

// Name implements Function.
func (a Adaptive) Name() string { return "adaptive" }

// Eval returns 1 − exp(−b²/(κ+b)).
func (a Adaptive) Eval(b float64) float64 {
	if b <= 0 {
		return 0
	}
	return -math.Expm1(-b * b / (a.Kappa + b))
}

// Deriv returns dπ/db = exp(−b²/(κ+b)) · (b² + 2κb)/(κ+b)².
func (a Adaptive) Deriv(b float64) float64 {
	if b < 0 {
		return 0
	}
	d := a.Kappa + b
	return math.Exp(-b*b/d) * (b*b + 2*a.Kappa*b) / (d * d)
}

// KMax returns the integer argmax of k·π(C/k). With κ = κ* the continuous
// argmax is exactly k = C; the integer argmax is one of its neighbors.
func (a Adaptive) KMax(c float64) (int, bool) {
	if c <= 0 {
		return 0, true
	}
	center := int(c)
	lo := center - 2
	if lo < 1 {
		lo = 1
	}
	k, _ := numeric.ArgmaxInt(func(k int) float64 {
		return TotalUtility(a, c, k)
	}, lo, center+3)
	return k, true
}

// Elastic is a traditional data application (mail, file transfer): utility
// is strictly concave everywhere, π(b) = 1 − e^(−b), so total utility always
// increases with the number of admitted flows and admission control is never
// warranted.
type Elastic struct{}

// Name implements Function.
func (Elastic) Name() string { return "elastic" }

// Eval returns 1 − e^(−b).
func (Elastic) Eval(b float64) float64 {
	if b <= 0 {
		return 0
	}
	return -math.Expm1(-b)
}

// Deriv returns e^(−b).
func (Elastic) Deriv(b float64) float64 {
	if b < 0 {
		return 0
	}
	return math.Exp(-b)
}

// KMax reports that no finite maximum exists.
func (Elastic) KMax(c float64) (int, bool) { return 0, false }

// Ramp is the continuum model's adaptive utility (§3.2): zero below a,
// linear between a and 1, and saturated at 1:
//
//	π(b) = 0            b ≤ a
//	π(b) = (b−a)/(1−a)  a < b < 1
//	π(b) = 1            b ≥ 1
//
// a = 1 reduces to the rigid case; decreasing a increases adaptivity; a = 0
// is no longer inelastic.
type Ramp struct {
	// A is the adaptivity parameter a ∈ (0, 1].
	A float64
}

// NewRamp returns the continuum adaptive utility with parameter a ∈ (0, 1].
func NewRamp(a float64) (Ramp, error) {
	if !(a > 0 && a <= 1) {
		return Ramp{}, fmt.Errorf("utility: ramp parameter must be in (0, 1], got %g", a)
	}
	return Ramp{A: a}, nil
}

// Name implements Function.
func (r Ramp) Name() string { return "ramp" }

// Eval implements the piecewise-linear form.
func (r Ramp) Eval(b float64) float64 {
	switch {
	case b <= r.A:
		return 0
	case b >= 1:
		return 1
	default:
		return (b - r.A) / (1 - r.A)
	}
}

// KMax returns the integer argmax of k·π(C/k). Total utility equals k for
// k ≤ C and (C − ak)/(1−a) beyond, so the continuous maximum is at k = C;
// for fractional C the integer argmax is ⌊C⌋ or ⌈C⌉ depending on whether
// the rising slope (1) or the falling slope (a/(1−a)) loses less.
func (r Ramp) KMax(c float64) (int, bool) {
	if c <= 0 {
		return 0, true
	}
	lo := int(math.Floor(c))
	if lo < 1 {
		lo = 1
	}
	k, _ := numeric.ArgmaxInt(func(k int) float64 {
		return TotalUtility(r, c, k)
	}, lo, lo+1)
	return k, true
}

// SlowTail is the §3.3 family approaching saturation algebraically rather
// than exponentially:
//
//	π(b) = 0          b ≤ 1
//	π(b) = 1 − b^(−τ) b > 1
//
// Its interaction with algebraic load tails (whether τ exceeds z−2 or z−3)
// flips the asymptotic behavior of the bandwidth gap.
type SlowTail struct {
	// Tau is the saturation power τ > 0.
	Tau float64
}

// NewSlowTail returns the slow-tail utility with power tau > 0.
func NewSlowTail(tau float64) (SlowTail, error) {
	if !(tau > 0) {
		return SlowTail{}, fmt.Errorf("utility: slow-tail power must be positive, got %g", tau)
	}
	return SlowTail{Tau: tau}, nil
}

// Name implements Function.
func (s SlowTail) Name() string { return "slowtail" }

// Eval implements the algebraic-saturation form.
func (s SlowTail) Eval(b float64) float64 {
	if b <= 1 {
		return 0
	}
	return 1 - math.Pow(b, -s.Tau)
}

// KMax returns ⌊C·(τ+1)^(−1/τ)⌋, the stationary point of
// V(k) = k − k^(τ+1) C^(−τ).
func (s SlowTail) KMax(c float64) (int, bool) {
	if c <= 0 {
		return 0, true
	}
	kStar := c * math.Pow(s.Tau+1, -1/s.Tau)
	// The integer argmax is a neighbor of the continuous stationary point.
	lo := int(kStar) - 2
	if lo < 1 {
		lo = 1
	}
	k, _ := numeric.ArgmaxInt(func(k int) float64 {
		return TotalUtility(s, c, k)
	}, lo, int(kStar)+3)
	return k, true
}

// KStar returns the continuous admission threshold C·(τ+1)^(−1/τ), used by
// the continuum model.
func (s SlowTail) KStar(c float64) float64 {
	return c * math.Pow(s.Tau+1, -1/s.Tau)
}

// PowerRamp is footnote 8's low-bandwidth power family:
//
//	π(b) = b^τ  b ≤ 1
//	π(b) = 1    b > 1
//
// For τ > 1 it is inelastic with kmax(C) = ⌊C⌋; for τ ≤ 1 total utility
// never decreases in k and no finite kmax exists.
type PowerRamp struct {
	// Tau is the low-bandwidth power τ > 0.
	Tau float64
}

// NewPowerRamp returns the power-ramp utility with power tau > 0.
func NewPowerRamp(tau float64) (PowerRamp, error) {
	if !(tau > 0) {
		return PowerRamp{}, fmt.Errorf("utility: power-ramp power must be positive, got %g", tau)
	}
	return PowerRamp{Tau: tau}, nil
}

// Name implements Function.
func (p PowerRamp) Name() string { return "powerramp" }

// Eval implements the power-ramp form.
func (p PowerRamp) Eval(b float64) float64 {
	if b <= 0 {
		return 0
	}
	if b >= 1 {
		return 1
	}
	return math.Pow(b, p.Tau)
}

// KMax returns ⌊C⌋ for τ > 1 and reports no finite maximum for τ ≤ 1.
func (p PowerRamp) KMax(c float64) (int, bool) {
	if p.Tau <= 1 {
		return 0, false
	}
	if c <= 0 {
		return 0, true
	}
	return int(math.Floor(c)), true
}
