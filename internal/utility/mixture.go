package utility

import (
	"fmt"
	"strings"

	"beqos/internal/numeric"
)

// Component is one application class in a heterogeneous population.
type Component struct {
	// Fn is the class's utility function.
	Fn Function
	// Weight is the fraction of flows in this class (normalized at
	// construction).
	Weight float64
	// Demand scales the class's bandwidth needs: a flow of this class
	// receiving share b performs like Fn at b/Demand. Demand 0 defaults
	// to 1.
	Demand float64
}

// Mixture models the paper's §5 "heterogeneous flows (both in size and in
// utility)" extension. When a random flow receives bandwidth share b, its
// expected utility is
//
//	π̄(b) = Σ w_i · π_i(b / d_i),
//
// which is itself a valid utility function (nondecreasing, π̄(0) = 0,
// π̄(∞) = 1), so the entire variable-load machinery applies unchanged —
// exactly why the paper found heterogeneity "did not change the basic
// nature of the asymptotic results", while perturbing the C ≈ k̄ region.
type Mixture struct {
	comps []Component
}

// NewMixture returns the mixture utility; weights must have positive total.
func NewMixture(comps []Component) (Mixture, error) {
	if len(comps) == 0 {
		return Mixture{}, fmt.Errorf("utility: mixture needs at least one component")
	}
	var total float64
	for i, c := range comps {
		if c.Fn == nil {
			return Mixture{}, fmt.Errorf("utility: mixture component %d has nil function", i)
		}
		if !(c.Weight >= 0) {
			return Mixture{}, fmt.Errorf("utility: mixture component %d has invalid weight %g", i, c.Weight)
		}
		if c.Demand < 0 {
			return Mixture{}, fmt.Errorf("utility: mixture component %d has negative demand %g", i, c.Demand)
		}
		total += c.Weight
	}
	if total <= 0 {
		return Mixture{}, fmt.Errorf("utility: mixture weights sum to %g; need positive mass", total)
	}
	out := make([]Component, len(comps))
	for i, c := range comps {
		out[i] = c
		out[i].Weight = c.Weight / total
		if out[i].Demand == 0 {
			out[i].Demand = 1
		}
	}
	return Mixture{comps: out}, nil
}

// Name implements Function.
func (m Mixture) Name() string {
	names := make([]string, len(m.comps))
	for i, c := range m.comps {
		names[i] = c.Fn.Name()
	}
	return "mixture(" + strings.Join(names, "+") + ")"
}

// Eval returns π̄(b) = Σ w_i·π_i(b/d_i).
func (m Mixture) Eval(b float64) float64 {
	var s float64
	for _, c := range m.comps {
		s += c.Weight * c.Fn.Eval(b/c.Demand)
	}
	return s
}

// KMax scans for the integer argmax of k·π̄(C/k). The scan range accounts
// for small-demand classes, whose flows remain useful at shares well below
// 1 (kmax can approach C/min(d_i)). It reports no finite maximum when the
// scan peaks at its boundary (e.g. a mixture dominated by an elastic
// class).
func (m Mixture) KMax(c float64) (int, bool) {
	if c <= 0 {
		return 0, true
	}
	minDemand := m.comps[0].Demand
	for _, comp := range m.comps[1:] {
		if comp.Demand < minDemand {
			minDemand = comp.Demand
		}
	}
	limit := int(4*c/minDemand) + 64
	k, _ := numeric.ArgmaxInt(func(k int) float64 {
		return TotalUtility(m, c, k)
	}, 1, limit)
	if k == limit {
		return k, false
	}
	return k, true
}
