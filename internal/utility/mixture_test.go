package utility

import (
	"math"
	"strings"
	"testing"
)

func TestMixtureValidation(t *testing.T) {
	rigid, _ := NewRigid(1)
	if _, err := NewMixture(nil); err == nil {
		t.Error("empty mixture should fail")
	}
	if _, err := NewMixture([]Component{{Fn: nil, Weight: 1}}); err == nil {
		t.Error("nil function should fail")
	}
	if _, err := NewMixture([]Component{{Fn: rigid, Weight: -1}}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewMixture([]Component{{Fn: rigid, Weight: 0}}); err == nil {
		t.Error("zero total weight should fail")
	}
	if _, err := NewMixture([]Component{{Fn: rigid, Weight: 1, Demand: -2}}); err == nil {
		t.Error("negative demand should fail")
	}
}

func TestMixtureEvalWeighted(t *testing.T) {
	rigid, _ := NewRigid(1)
	m, err := NewMixture([]Component{
		{Fn: rigid, Weight: 1, Demand: 1},
		{Fn: rigid, Weight: 3, Demand: 2}, // needs share 2
	})
	if err != nil {
		t.Fatal(err)
	}
	// Weights normalize to 1/4 and 3/4.
	cases := []struct{ b, want float64 }{
		{0.5, 0},
		{1, 0.25},   // only the small class is satisfied
		{1.9, 0.25}, //
		{2, 1},      // both satisfied
		{100, 1},    //
	}
	for _, c := range cases {
		if got := m.Eval(c.b); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("π̄(%g) = %v, want %v", c.b, got, c.want)
		}
	}
	if err := Validate(m); err != nil {
		t.Errorf("mixture fails utility contract: %v", err)
	}
	if !strings.Contains(m.Name(), "rigid") {
		t.Errorf("name = %q", m.Name())
	}
}

func TestMixtureSmallDemandExtendsKMax(t *testing.T) {
	// Half the flows are "thin" (demand 1/4): admission can usefully pack
	// far more than C of them.
	rigid, _ := NewRigid(1)
	m, err := NewMixture([]Component{
		{Fn: rigid, Weight: 1, Demand: 1},
		{Fn: rigid, Weight: 1, Demand: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	k, ok := m.KMax(100)
	if !ok {
		t.Fatal("expected finite kmax")
	}
	if k <= 100 {
		t.Errorf("kmax = %d; thin flows should push it beyond C = 100", k)
	}
	if k > 400 {
		t.Errorf("kmax = %d exceeds the thin-class bound C/d = 400", k)
	}
	// The argmax property holds.
	v := TotalUtility(m, 100, k)
	if v < TotalUtility(m, 100, k-1) || v < TotalUtility(m, 100, k+1) {
		t.Errorf("kmax = %d is not a local maximum", k)
	}
}

func TestMixtureElasticDominatedHasNoFiniteKMax(t *testing.T) {
	rigid, _ := NewRigid(1)
	m, err := NewMixture([]Component{
		{Fn: rigid, Weight: 0.05},
		{Fn: Elastic{}, Weight: 0.95},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.KMax(100); ok {
		t.Error("elastic-dominated mixture should have no finite kmax")
	}
}

func TestMixtureRigidDominatedHasFiniteKMax(t *testing.T) {
	rigid, _ := NewRigid(1)
	m, err := NewMixture([]Component{
		{Fn: rigid, Weight: 0.5},
		{Fn: Elastic{}, Weight: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	k, ok := m.KMax(100)
	if !ok {
		t.Fatal("rigid-dominated mixture should have finite kmax")
	}
	if k != 100 {
		t.Errorf("kmax = %d, want 100 (set by the rigid class)", k)
	}
}

func TestMixtureDemandDefaultsToOne(t *testing.T) {
	rigid, _ := NewRigid(1)
	m, err := NewMixture([]Component{{Fn: rigid, Weight: 1}}) // Demand omitted
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Eval(1); got != 1 {
		t.Errorf("π̄(1) = %v, want 1", got)
	}
}
