// Package utility implements the application utility (performance) functions
// π(b) of Breslau & Shenker (SIGCOMM 1998): rigid, adaptive (the paper's
// equation 2), elastic, the continuum-model piecewise-linear ramp, and the
// slowly-saturating tail families of §3.3. A utility function maps the
// bandwidth share b a flow receives to the value the flow's user derives,
// normalized so π(0) = 0 and π(∞) = 1.
package utility

import (
	"fmt"
	"math"
)

// Function is an application utility function π(b). Implementations must be
// nondecreasing with π(0) = 0 and π(b) → 1 as b → ∞ (rigid-style functions
// reach 1 at finite b).
type Function interface {
	// Name returns a short stable identifier ("rigid", "adaptive", …).
	Name() string
	// Eval returns π(b). Implementations return 0 for b ≤ 0.
	Eval(b float64) float64
}

// Differentiable is implemented by utility functions with an analytic
// derivative, used by calibration and by tests.
type Differentiable interface {
	// Deriv returns dπ/db.
	Deriv(b float64) float64
}

// KMaxer is implemented by utility functions whose admission threshold
// kmax(C) = argmax_k k·π(C/k) has a closed form.
type KMaxer interface {
	// KMax returns the utility-maximizing number of admitted flows at
	// capacity C, and false when no finite maximum exists (elastic
	// utilities, for which admission control should not be used).
	KMax(c float64) (int, bool)
}

// KMax returns the admission threshold kmax(C) = argmax_{k ≥ 0, integer}
// k·π(C/k) for the given utility function. If f implements KMaxer its
// closed form is used; otherwise the integer argmax is found by scanning.
// The second result is false when the total utility keeps increasing in k
// (an everywhere-concave, elastic utility), in which case admission control
// is pointless and the first result is meaningless.
func KMax(f Function, c float64) (int, bool) {
	if c <= 0 {
		return 0, true
	}
	if km, ok := f.(KMaxer); ok {
		return km.KMax(c)
	}
	// Scan: for the paper's inelastic functions the argmax is near C (the
	// adaptive κ* calibration puts it at exactly C). Scan well beyond to
	// detect elastic behavior.
	limit := int(8*c) + 64
	v := func(k int) float64 {
		return float64(k) * f.Eval(c/float64(k))
	}
	bestK, bestV := 0, 0.0
	for k := 1; k <= limit; k++ {
		if vk := v(k); vk > bestV {
			bestK, bestV = k, vk
		}
	}
	if bestK == limit {
		return bestK, false
	}
	return bestK, true
}

// TotalUtility returns the fixed-load-model total utility
// V(k) = k·π(C/k) (the paper's §2).
func TotalUtility(f Function, c float64, k int) float64 {
	if k <= 0 {
		return 0
	}
	return float64(k) * f.Eval(c/float64(k))
}

// Validate checks the basic contract of a utility function on a sample of
// points: π(0) = 0, nondecreasing, bounded by 1 from below at large b. It is
// exported for use by tests and by callers accepting user-supplied
// functions.
func Validate(f Function) error {
	if v := f.Eval(0); v != 0 {
		return fmt.Errorf("utility %q: π(0) = %g, want 0", f.Name(), v)
	}
	prev := 0.0
	for b := 0.0; b <= 64; b += 1.0 / 128 {
		v := f.Eval(b)
		if math.IsNaN(v) || v < prev-1e-12 {
			return fmt.Errorf("utility %q: not nondecreasing at b = %g (%g after %g)", f.Name(), b, v, prev)
		}
		if v > 1+1e-9 {
			return fmt.Errorf("utility %q: π(%g) = %g exceeds 1", f.Name(), b, v)
		}
		prev = v
	}
	if top := f.Eval(1 << 20); top < 0.6 {
		return fmt.Errorf("utility %q: π(2^20) = %g; should approach 1", f.Name(), top)
	}
	return nil
}
