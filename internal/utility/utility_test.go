package utility

import (
	"math"
	"testing"
	"testing/quick"
)

// bare strips any optional interfaces (KMaxer, Differentiable) from a
// utility function, forcing generic code paths.
type bare struct{ f Function }

func (b bare) Name() string           { return b.f.Name() }
func (b bare) Eval(x float64) float64 { return b.f.Eval(x) }

func allFunctions(t *testing.T) []Function {
	t.Helper()
	rigid, err := NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	ramp, err := NewRamp(0.5)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewSlowTail(1)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewPowerRamp(2)
	if err != nil {
		t.Fatal(err)
	}
	return []Function{rigid, NewAdaptive(), Elastic{}, ramp, st, pr}
}

func TestValidateAll(t *testing.T) {
	for _, f := range allFunctions(t) {
		if err := Validate(f); err != nil {
			t.Errorf("%s: %v", f.Name(), err)
		}
	}
}

func TestKappaStarMatchesPaper(t *testing.T) {
	// The paper reports κ = 0.62086.
	if got := KappaStar(); math.Abs(got-0.62086) > 5e-6 {
		t.Errorf("κ* = %v, want 0.62086", got)
	}
}

func TestAdaptiveStationarityAtOne(t *testing.T) {
	a := NewAdaptive()
	// π(1) = π′(1) makes b = 1 the per-flow operating point maximizing
	// total utility, hence kmax(C) = C.
	if diff := a.Eval(1) - a.Deriv(1); math.Abs(diff) > 1e-12 {
		t.Errorf("π(1) − π′(1) = %v", diff)
	}
}

func TestAdaptiveAsymptotes(t *testing.T) {
	a := NewAdaptive()
	// Small b: π(b) ≈ b²/κ, with next-order relative error O(b/κ).
	for _, b := range []float64{1e-4, 1e-3} {
		want := b * b / a.Kappa
		if got := a.Eval(b); math.Abs(got-want) > 2*(b/a.Kappa)*want {
			t.Errorf("π(%g) = %v, want ≈ %v", b, got, want)
		}
	}
	// Large b: π(b) ≈ 1 − e^(−b).
	for _, b := range []float64{50.0, 200.0} {
		want := -math.Expm1(-b)
		if got := a.Eval(b); math.Abs(got-want) > 1e-6 {
			t.Errorf("π(%g) = %v, want ≈ %v", b, got, want)
		}
	}
}

func TestAdaptiveDerivativeMatchesFiniteDifference(t *testing.T) {
	a := NewAdaptive()
	prop := func(seed float64) bool {
		b := 0.01 + math.Mod(math.Abs(seed), 20)
		h := 1e-6 * (1 + b)
		fd := (a.Eval(b+h) - a.Eval(b-h)) / (2 * h)
		return math.Abs(fd-a.Deriv(b)) < 1e-5*(1+math.Abs(fd))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRigidEval(t *testing.T) {
	r, _ := NewRigid(1)
	cases := []struct{ b, want float64 }{
		{0, 0}, {0.999, 0}, {1, 1}, {5, 1},
	}
	for _, c := range cases {
		if got := r.Eval(c.b); got != c.want {
			t.Errorf("rigid π(%g) = %v, want %v", c.b, got, c.want)
		}
	}
	if _, err := NewRigid(0); err == nil {
		t.Error("zero requirement should fail")
	}
}

func TestRigidKMax(t *testing.T) {
	r, _ := NewRigid(1)
	for _, c := range []struct {
		cap  float64
		want int
	}{{0.5, 0}, {1, 1}, {7.9, 7}, {100, 100}} {
		k, ok := KMax(r, c.cap)
		if !ok || k != c.want {
			t.Errorf("rigid kmax(%g) = %d,%v, want %d", c.cap, k, ok, c.want)
		}
	}
	r2, _ := NewRigid(2)
	if k, _ := KMax(r2, 10); k != 5 {
		t.Errorf("rigid(b̂=2) kmax(10) = %d, want 5", k)
	}
}

func TestElasticHasNoFiniteKMax(t *testing.T) {
	if _, ok := KMax(Elastic{}, 100); ok {
		t.Error("elastic should report no finite kmax")
	}
	// The generic scanner must agree.
	if _, ok := KMax(bare{Elastic{}}, 100); ok {
		t.Error("generic scan should detect elastic divergence")
	}
}

func TestKMaxClosedFormsMatchGenericScan(t *testing.T) {
	rigid, _ := NewRigid(1)
	ramp, _ := NewRamp(0.3)
	st, _ := NewSlowTail(2)
	pr, _ := NewPowerRamp(3)
	for _, f := range []Function{rigid, NewAdaptive(), ramp, st, pr} {
		for _, c := range []float64{3.5, 10, 47.2, 100} {
			closed, ok1 := KMax(f, c)
			scanned, ok2 := KMax(bare{f}, c)
			if ok1 != ok2 {
				t.Errorf("%s kmax(%g): finiteness disagrees", f.Name(), c)
				continue
			}
			// The argmax may be non-unique on plateaus (e.g. ramp/rigid
			// where V(k) = k up to C); require equal V, not equal k.
			v1 := TotalUtility(f, c, closed)
			v2 := TotalUtility(f, c, scanned)
			if math.Abs(v1-v2) > 1e-12*(1+math.Abs(v2)) {
				t.Errorf("%s kmax(%g): closed %d (V=%v) vs scan %d (V=%v)",
					f.Name(), c, closed, v1, scanned, v2)
			}
		}
	}
}

func TestKMaxIsArgmaxProperty(t *testing.T) {
	// For every inelastic function and capacity, V(kmax) ≥ V(kmax ± 1).
	rigid, _ := NewRigid(1)
	ramp, _ := NewRamp(0.7)
	st, _ := NewSlowTail(1.5)
	fs := []Function{rigid, NewAdaptive(), ramp, st}
	prop := func(seedF, seedC uint32) bool {
		f := fs[int(seedF)%len(fs)]
		c := 1 + float64(seedC%5000)/10
		k, ok := KMax(f, c)
		if !ok {
			return false
		}
		v := TotalUtility(f, c, k)
		return v >= TotalUtility(f, c, k-1)-1e-12 &&
			v >= TotalUtility(f, c, k+1)-1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRampShape(t *testing.T) {
	r, _ := NewRamp(0.25)
	cases := []struct{ b, want float64 }{
		{0.1, 0}, {0.25, 0}, {0.625, 0.5}, {1, 1}, {3, 1},
	}
	for _, c := range cases {
		if got := r.Eval(c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ramp π(%g) = %v, want %v", c.b, got, c.want)
		}
	}
	if _, err := NewRamp(0); err == nil {
		t.Error("a = 0 should fail")
	}
	if _, err := NewRamp(1.5); err == nil {
		t.Error("a > 1 should fail")
	}
}

func TestRampAtOneIsRigid(t *testing.T) {
	r, _ := NewRamp(1)
	rigid, _ := NewRigid(1)
	for b := 0.0; b <= 3; b += 0.05 {
		if r.Eval(b) != rigid.Eval(b) {
			t.Errorf("ramp(a=1) π(%g) = %v, rigid gives %v", b, r.Eval(b), rigid.Eval(b))
		}
	}
}

func TestSlowTailKStar(t *testing.T) {
	s, _ := NewSlowTail(1)
	// τ = 1: k* = C/2.
	if got := s.KStar(100); math.Abs(got-50) > 1e-12 {
		t.Errorf("k*(100) = %v, want 50", got)
	}
	if _, err := NewSlowTail(0); err == nil {
		t.Error("τ = 0 should fail")
	}
}

func TestPowerRampKMax(t *testing.T) {
	low, _ := NewPowerRamp(0.5)
	if _, ok := low.KMax(100); ok {
		t.Error("τ ≤ 1 should report no finite kmax")
	}
	hi, _ := NewPowerRamp(2)
	if k, ok := hi.KMax(100); !ok || k != 100 {
		t.Errorf("powerramp(2) kmax(100) = %d,%v", k, ok)
	}
	if _, err := NewPowerRamp(-1); err == nil {
		t.Error("negative τ should fail")
	}
}

func TestTotalUtility(t *testing.T) {
	rigid, _ := NewRigid(1)
	if got := TotalUtility(rigid, 10, 5); got != 5 {
		t.Errorf("V(5) = %v, want 5", got)
	}
	if got := TotalUtility(rigid, 10, 20); got != 0 {
		t.Errorf("V(20) = %v, want 0 (each share below b̂)", got)
	}
	if got := TotalUtility(rigid, 10, 0); got != 0 {
		t.Errorf("V(0) = %v, want 0", got)
	}
}

func TestKMaxZeroCapacity(t *testing.T) {
	for _, f := range allFunctions(t) {
		if k, _ := KMax(f, 0); k != 0 {
			t.Errorf("%s kmax(0) = %d, want 0", f.Name(), k)
		}
	}
}
