package workload

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseWorkloadSpec throws arbitrary text at the spec parser. Parse
// must never panic; any spec it accepts must satisfy the compiled
// invariants (positive duration, phases with both directives, normalized
// class weights) and must instantiate a stream whose first records obey
// the horizon. The bundled specs/ library seeds the corpus.
func FuzzParseWorkloadSpec(f *testing.F) {
	seeds, _ := filepath.Glob(filepath.Join("..", "..", "specs", "*.spec"))
	for _, path := range seeds {
		if text, err := os.ReadFile(path); err == nil {
			f.Add(string(text))
		}
	}
	f.Add(goodSpec)
	f.Add("scenario x\nphase p 1\narrivals poisson rate=1\nholding exp mean=1\n")
	f.Add("scenario x\nprefill 2\nwarmup 0.5\nclass a weight=1 tier=1\nphase p 3\narrivals mmpp rate=4 burst=3 sojourn=1\nholding pareto mean=1 shape=2\nevent flash at=1 mult=2 width=1\n")
	f.Add("scenario x\nphase p 2\narrivals gamma rate=2 cv=0.5\nholding lognormal mean=1 sigma=0.5\nevent sine period=1 depth=0.9\n")

	f.Fuzz(func(t *testing.T, text string) {
		s, err := Parse(text)
		if err != nil {
			return
		}
		if !(s.Duration() > 0) {
			t.Fatalf("accepted spec has non-positive duration %g", s.Duration())
		}
		if s.Warmup >= s.Duration() {
			t.Fatalf("accepted spec has warmup %g ≥ duration %g", s.Warmup, s.Duration())
		}
		sum := 0.0
		for _, c := range s.Classes {
			if !(c.Weight > 0) || !(c.Demand > 0) || c.Tier > MaxTier {
				t.Fatalf("accepted spec has invalid class %+v", c)
			}
			sum += c.Weight
		}
		if len(s.Classes) > 0 && (sum < 0.999 || sum > 1.001) {
			t.Fatalf("class weights not normalized: %g", sum)
		}
		for i := range s.Phases {
			p := &s.Phases[i]
			if p.Arrivals.Kind == "" || p.Holding.Kind == "" {
				t.Fatalf("accepted spec has incomplete phase %+v", p)
			}
			if !(p.Duration > 0) {
				t.Fatalf("accepted spec has non-positive phase duration %+v", p)
			}
		}
		// The stream must start cleanly and respect the horizon. Cap the
		// pull count: arbitrary accepted specs can describe billions of
		// arrivals.
		st := s.Stream(1, 2)
		for i := 0; i < 64; i++ {
			rec, ok := st.Next()
			if !ok {
				break
			}
			if rec.At < 0 || rec.At > s.Duration() {
				t.Fatalf("record %d outside horizon: %+v", i, rec)
			}
			if rec.Phase < 0 || rec.Phase >= len(s.Phases) {
				t.Fatalf("record %d has bad phase: %+v", i, rec)
			}
		}
	})
}
