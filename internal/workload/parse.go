package workload

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Parse reads a workload scenario spec. The format is line-based:
//
//	# comment
//	scenario <name>                 # required, first directive
//	prefill <n>                     # optional: flows injected at t=0
//	warmup <t>                      # optional: measurement warmup prefix
//	class <name> weight=<w> [demand=<d>] [tier=<n>]
//	phase <name> <duration>         # at least one
//	arrivals poisson rate=<r>
//	arrivals mmpp rate=<r> burst=<b> sojourn=<s>
//	arrivals gamma rate=<r> cv=<c>
//	holding exp mean=<m>
//	holding pareto mean=<m> shape=<a>
//	holding lognormal mean=<m> sigma=<s>
//	event step at=<t> mult=<m>
//	event flash at=<t> mult=<m> width=<w>
//	event sine period=<p> depth=<d>
//
// scenario-level directives (prefill, warmup, class) must precede the
// first phase; arrivals/holding/event attach to the most recent phase.
// Errors name the offending line.
func Parse(text string) (*Scenario, error) {
	s := &Scenario{}
	var cur *Phase
	classNames := map[string]bool{}
	phaseNames := map[string]bool{}
	for ln, raw := range strings.Split(text, "\n") {
		lineNo := ln + 1
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		dir := fields[0]
		if s.Name == "" && dir != "scenario" {
			return nil, specErr(lineNo, "spec must begin with a scenario directive, got %q", dir)
		}
		switch dir {
		case "scenario":
			if s.Name != "" {
				return nil, specErr(lineNo, "duplicate scenario directive (already %q)", s.Name)
			}
			if len(fields) != 2 {
				return nil, specErr(lineNo, "usage: scenario <name>")
			}
			s.Name = fields[1]

		case "prefill":
			if cur != nil {
				return nil, specErr(lineNo, "prefill must precede the first phase")
			}
			if len(fields) != 2 {
				return nil, specErr(lineNo, "usage: prefill <n>")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 || n > MaxPrefill {
				return nil, specErr(lineNo, "prefill %q must be an integer in [0, %d]", fields[1], MaxPrefill)
			}
			s.Prefill = n

		case "warmup":
			if cur != nil {
				return nil, specErr(lineNo, "warmup must precede the first phase")
			}
			if len(fields) != 2 {
				return nil, specErr(lineNo, "usage: warmup <t>")
			}
			w, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || !(w >= 0) || w > MaxDuration {
				return nil, specErr(lineNo, "warmup %q must be a number in [0, %g]", fields[1], float64(MaxDuration))
			}
			s.Warmup = w

		case "class":
			if cur != nil {
				return nil, specErr(lineNo, "class must precede the first phase")
			}
			if len(fields) < 3 {
				return nil, specErr(lineNo, "usage: class <name> weight=<w> [demand=<d>] [tier=<n>]")
			}
			if len(s.Classes) >= MaxClasses {
				return nil, specErr(lineNo, "too many classes (max %d)", MaxClasses)
			}
			name := fields[1]
			if classNames[name] {
				return nil, specErr(lineNo, "duplicate class %q", name)
			}
			classNames[name] = true
			kv, err := parseKV(lineNo, "class", fields[2:])
			if err != nil {
				return nil, err
			}
			c := Class{Name: name, Demand: 1}
			w, ok := kv.take("weight")
			if !ok || !(w > 0) || math.IsInf(w, 0) {
				return nil, specErr(lineNo, "class %s needs weight= > 0", name)
			}
			c.Weight = w
			if d, ok := kv.take("demand"); ok {
				if !(d > 0) || d > 1e6 {
					return nil, specErr(lineNo, "class %s demand= must be in (0, 1e6]", name)
				}
				c.Demand = d
			}
			if t, ok := kv.take("tier"); ok {
				if t != math.Trunc(t) || t < 0 || t > MaxTier {
					return nil, specErr(lineNo, "class %s tier= must be an integer in [0, %d]", name, MaxTier)
				}
				c.Tier = uint8(t)
			}
			if err := kv.empty(); err != nil {
				return nil, err
			}
			s.Classes = append(s.Classes, c)

		case "phase":
			if len(fields) != 3 {
				return nil, specErr(lineNo, "usage: phase <name> <duration>")
			}
			if len(s.Phases) >= MaxPhases {
				return nil, specErr(lineNo, "too many phases (max %d)", MaxPhases)
			}
			name := fields[1]
			if phaseNames[name] {
				return nil, specErr(lineNo, "duplicate phase %q", name)
			}
			phaseNames[name] = true
			d, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || !(d > 0) || d > MaxDuration {
				return nil, specErr(lineNo, "phase %s duration %q must be a number in (0, %g]", name, fields[2], float64(MaxDuration))
			}
			s.Phases = append(s.Phases, Phase{Name: name, Duration: d})
			cur = &s.Phases[len(s.Phases)-1]

		case "arrivals":
			if cur == nil {
				return nil, specErr(lineNo, "arrivals outside a phase")
			}
			if cur.Arrivals.Kind != "" {
				return nil, specErr(lineNo, "phase %s already has arrivals", cur.Name)
			}
			if len(fields) < 2 {
				return nil, specErr(lineNo, "usage: arrivals poisson|mmpp|gamma key=value...")
			}
			kv, err := parseKV(lineNo, "arrivals", fields[2:])
			if err != nil {
				return nil, err
			}
			a := ArrivalSpec{Kind: fields[1]}
			rate, ok := kv.take("rate")
			if !ok || !(rate > 0) || rate > MaxRate {
				return nil, specErr(lineNo, "arrivals %s needs rate= in (0, %g]", a.Kind, float64(MaxRate))
			}
			a.Rate = rate
			switch a.Kind {
			case "poisson":
			case "mmpp":
				b, ok := kv.take("burst")
				if !ok || !(b >= 1) || b > 1e6 {
					return nil, specErr(lineNo, "arrivals mmpp needs burst= in [1, 1e6] (high/low rate ratio)")
				}
				a.Burst = b
				sj, ok := kv.take("sojourn")
				if !ok || !(sj > 0) || sj > MaxDuration {
					return nil, specErr(lineNo, "arrivals mmpp needs sojourn= in (0, %g] (mean state sojourn)", float64(MaxDuration))
				}
				a.Sojourn = sj
			case "gamma":
				cv, ok := kv.take("cv")
				if !ok || !(cv > 0) || cv > 10 {
					return nil, specErr(lineNo, "arrivals gamma needs cv= in (0, 10] (inter-arrival coefficient of variation)")
				}
				a.CV = cv
			default:
				return nil, specErr(lineNo, "unknown arrival process %q (want poisson, mmpp, or gamma)", a.Kind)
			}
			if err := kv.empty(); err != nil {
				return nil, err
			}
			cur.Arrivals = a

		case "holding":
			if cur == nil {
				return nil, specErr(lineNo, "holding outside a phase")
			}
			if cur.Holding.Kind != "" {
				return nil, specErr(lineNo, "phase %s already has holding", cur.Name)
			}
			if len(fields) < 2 {
				return nil, specErr(lineNo, "usage: holding exp|pareto|lognormal key=value...")
			}
			kv, err := parseKV(lineNo, "holding", fields[2:])
			if err != nil {
				return nil, err
			}
			h := HoldSpec{Kind: fields[1]}
			mean, ok := kv.take("mean")
			if !ok || !(mean > 0) || mean > MaxDuration {
				return nil, specErr(lineNo, "holding %s needs mean= in (0, %g]", h.Kind, float64(MaxDuration))
			}
			h.Mean = mean
			switch h.Kind {
			case "exp":
			case "pareto":
				sh, ok := kv.take("shape")
				if !ok || !(sh > 1) || sh > 1e3 {
					return nil, specErr(lineNo, "holding pareto needs shape= in (1, 1e3]: shape ≤ 1 has an unbounded mean")
				}
				h.Shape = sh
			case "lognormal":
				sg, ok := kv.take("sigma")
				if !ok || !(sg > 0) || sg > 4 {
					return nil, specErr(lineNo, "holding lognormal needs sigma= in (0, 4]: larger log-deviations make the empirical mean effectively unbounded")
				}
				h.Sigma = sg
			default:
				return nil, specErr(lineNo, "unknown holding distribution %q (want exp, pareto, or lognormal)", h.Kind)
			}
			if err := kv.empty(); err != nil {
				return nil, err
			}
			cur.Holding = h

		case "event":
			if cur == nil {
				return nil, specErr(lineNo, "event outside a phase")
			}
			if len(fields) < 2 {
				return nil, specErr(lineNo, "usage: event step|flash|sine key=value...")
			}
			kv, err := parseKV(lineNo, "event", fields[2:])
			if err != nil {
				return nil, err
			}
			ev := Event{Kind: fields[1]}
			switch ev.Kind {
			case "step", "flash":
				if len(cur.Events) >= MaxEvents {
					return nil, specErr(lineNo, "too many events in phase %s (max %d)", cur.Name, MaxEvents)
				}
				at, ok := kv.take("at")
				if !ok || !(at >= 0) || at >= cur.Duration {
					return nil, specErr(lineNo, "event %s needs at= in [0, phase duration %g)", ev.Kind, cur.Duration)
				}
				ev.At = at
				m, ok := kv.take("mult")
				if !ok || !(m > 0) || m > 1e6 {
					return nil, specErr(lineNo, "event %s needs mult= in (0, 1e6]", ev.Kind)
				}
				ev.Mult = m
				if ev.Kind == "flash" {
					w, ok := kv.take("width")
					if !ok || !(w > 0) || ev.At+w > cur.Duration {
						return nil, specErr(lineNo, "event flash needs width= > 0 with at+width ≤ phase duration %g", cur.Duration)
					}
					ev.Width = w
				}
				cur.Events = append(cur.Events, ev)
			case "sine":
				if cur.Sine != nil {
					return nil, specErr(lineNo, "phase %s already has a sine event", cur.Name)
				}
				p, ok := kv.take("period")
				if !ok || !(p > 0) || p > MaxDuration {
					return nil, specErr(lineNo, "event sine needs period= in (0, %g]", float64(MaxDuration))
				}
				ev.Period = p
				d, ok := kv.take("depth")
				if !ok || !(d >= 0) || d > 0.95 {
					return nil, specErr(lineNo, "event sine needs depth= in [0, 0.95]: deeper troughs starve the thinning sampler")
				}
				ev.Depth = d
				cur.Sine = &ev
			default:
				return nil, specErr(lineNo, "unknown event %q (want step, flash, or sine)", ev.Kind)
			}
			if err := kv.empty(); err != nil {
				return nil, err
			}

		default:
			return nil, specErr(lineNo, "unknown directive %q", dir)
		}
	}
	if s.Name == "" {
		return nil, fmt.Errorf("workload: empty spec (no scenario directive)")
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// specErr formats a parse error anchored to a spec line.
func specErr(line int, format string, args ...any) error {
	return fmt.Errorf("workload: line %d: %s", line, fmt.Sprintf(format, args...))
}

// kvSet holds one directive's key=value arguments.
type kvSet struct {
	line int
	dir  string
	vals map[string]float64
}

// parseKV parses key=value fields into a set, rejecting malformed pairs
// and duplicates.
func parseKV(line int, dir string, fields []string) (*kvSet, error) {
	kv := &kvSet{line: line, dir: dir, vals: map[string]float64{}}
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok || k == "" {
			return nil, specErr(line, "%s: argument %q is not key=value", dir, f)
		}
		if _, dup := kv.vals[k]; dup {
			return nil, specErr(line, "%s: duplicate key %q", dir, k)
		}
		x, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, specErr(line, "%s: %s=%q is not a number", dir, k, v)
		}
		kv.vals[k] = x
	}
	return kv, nil
}

// take removes and returns a key's value.
func (kv *kvSet) take(key string) (float64, bool) {
	v, ok := kv.vals[key]
	delete(kv.vals, key)
	return v, ok
}

// empty errors on any leftover (unknown) keys.
func (kv *kvSet) empty() error {
	if len(kv.vals) == 0 {
		return nil
	}
	keys := make([]string, 0, len(kv.vals))
	for k := range kv.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return specErr(kv.line, "%s: unknown key %q", kv.dir, keys[0])
}
