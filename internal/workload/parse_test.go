package workload

import (
	"math"
	"strings"
	"testing"
)

const goodSpec = `
# A three-phase scenario exercising most of the grammar.
scenario demo
prefill 20
warmup 2
class gold weight=1 demand=2 tier=0
class bulk weight=3 tier=2

phase steady 10
arrivals poisson rate=20
holding exp mean=1

phase storm 8
arrivals mmpp rate=20 burst=4 sojourn=1.5
holding pareto mean=1 shape=1.5
event flash at=2 mult=3 width=2
event step at=6 mult=0.5

phase tail 6
arrivals gamma rate=10 cv=2
holding lognormal mean=2 sigma=1
`

func TestParseGoodSpec(t *testing.T) {
	s, err := Parse(goodSpec)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Name != "demo" || s.Prefill != 20 || s.Warmup != 2 {
		t.Fatalf("header mismatch: %+v", s)
	}
	if len(s.Phases) != 3 || len(s.Classes) != 2 {
		t.Fatalf("want 3 phases, 2 classes: %+v", s)
	}
	if got := s.Duration(); got != 24 {
		t.Fatalf("Duration = %g, want 24", got)
	}
	if w := s.Classes[0].Weight + s.Classes[1].Weight; math.Abs(w-1) > 1e-12 {
		t.Fatalf("class weights not normalized: sum %g", w)
	}
	if s.Classes[0].Weight != 0.25 || s.Classes[1].Tier != 2 || s.Classes[0].Demand != 2 {
		t.Fatalf("class fields wrong: %+v", s.Classes)
	}
	if s.Phases[1].Start != 10 || s.Phases[2].Start != 18 {
		t.Fatalf("phase starts wrong: %+v", s.Phases)
	}
	if s.Phases[1].Sine != nil || len(s.Phases[1].Events) != 2 {
		t.Fatalf("storm events wrong: %+v", s.Phases[1])
	}
	// Flash [2,4) and step at 6 → edges 2, 4, 6.
	if got := s.Phases[1].edges; len(got) != 3 || got[0] != 2 || got[1] != 4 || got[2] != 6 {
		t.Fatalf("storm edges = %v, want [2 4 6]", got)
	}
	if s.PhaseAt(0) != 0 || s.PhaseAt(10) != 1 || s.PhaseAt(23.9) != 2 || s.PhaseAt(99) != 2 {
		t.Fatalf("PhaseAt wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, spec, want string
	}{
		{"empty", "", "empty spec"},
		{"comment only", "# nothing\n", "empty spec"},
		{"no scenario first", "phase a 1\n", "must begin with a scenario"},
		{"duplicate scenario", "scenario a\nscenario b\n", "duplicate scenario"},
		{"scenario usage", "scenario\n", "usage: scenario"},
		{"no phases", "scenario a\n", "no phases"},
		{"prefill after phase", "scenario a\nphase p 1\nprefill 3\n", "precede the first phase"},
		{"prefill bad", "scenario a\nprefill -1\n", "prefill"},
		{"prefill huge", "scenario a\nprefill 99999999\n", "prefill"},
		{"warmup bad", "scenario a\nwarmup x\n", "warmup"},
		{"warmup too long", "scenario a\nwarmup 5\nphase p 4\narrivals poisson rate=1\nholding exp mean=1\n", "not shorter"},
		{"class no weight", "scenario a\nclass c demand=1\n", "needs weight"},
		{"class bad tier", "scenario a\nclass c weight=1 tier=7\n", "tier"},
		{"class frac tier", "scenario a\nclass c weight=1 tier=1.5\n", "tier"},
		{"class dup", "scenario a\nclass c weight=1\nclass c weight=2\n", "duplicate class"},
		{"class unknown key", "scenario a\nclass c weight=1 color=3\n", `unknown key "color"`},
		{"phase usage", "scenario a\nphase p\n", "usage: phase"},
		{"phase duration", "scenario a\nphase p 0\n", "duration"},
		{"phase nan", "scenario a\nphase p NaN\n", "duration"},
		{"phase dup", "scenario a\nphase p 1\nphase p 1\n", "duplicate phase"},
		{"arrivals orphan", "scenario a\narrivals poisson rate=1\n", "outside a phase"},
		{"arrivals dup", "scenario a\nphase p 1\narrivals poisson rate=1\narrivals poisson rate=2\n", "already has arrivals"},
		{"arrivals kind", "scenario a\nphase p 1\narrivals weibull rate=1\n", "unknown arrival process"},
		{"arrivals no rate", "scenario a\nphase p 1\narrivals poisson\n", "needs rate"},
		{"arrivals nan rate", "scenario a\nphase p 1\narrivals poisson rate=NaN\n", "needs rate"},
		{"mmpp no burst", "scenario a\nphase p 1\narrivals mmpp rate=1 sojourn=1\n", "burst"},
		{"mmpp low burst", "scenario a\nphase p 1\narrivals mmpp rate=1 burst=0.5 sojourn=1\n", "burst"},
		{"mmpp no sojourn", "scenario a\nphase p 1\narrivals mmpp rate=1 burst=2\n", "sojourn"},
		{"gamma no cv", "scenario a\nphase p 1\narrivals gamma rate=1\n", "cv"},
		{"holding missing", "scenario a\nphase p 1\narrivals poisson rate=1\n", "no holding"},
		{"arrivals missing", "scenario a\nphase p 1\nholding exp mean=1\n", "no arrivals"},
		{"holding kind", "scenario a\nphase p 1\nholding uniform mean=1\n", "unknown holding"},
		{"holding dup", "scenario a\nphase p 1\nholding exp mean=1\nholding exp mean=2\n", "already has holding"},
		{"pareto shape 1", "scenario a\nphase p 1\nholding pareto mean=1 shape=1\n", "unbounded mean"},
		{"lognormal sigma", "scenario a\nphase p 1\nholding lognormal mean=1 sigma=9\n", "sigma"},
		{"event orphan", "scenario a\nevent step at=0 mult=2\n", "outside a phase"},
		{"event kind", "scenario a\nphase p 1\nevent quake at=0 mult=2\n", "unknown event"},
		{"event late", "scenario a\nphase p 1\nevent step at=2 mult=2\n", "at="},
		{"flash wide", "scenario a\nphase p 2\nevent flash at=1 mult=2 width=1.5\n", "width"},
		{"sine depth", "scenario a\nphase p 1\nevent sine period=1 depth=1\n", "depth"},
		{"sine dup", "scenario a\nphase p 9\nevent sine period=1 depth=0.5\nevent sine period=2 depth=0.5\n", "already has a sine"},
		{"gamma with events", "scenario a\nphase p 9\narrivals gamma rate=1 cv=2\nholding exp mean=1\nevent step at=1 mult=2\n", "gamma renewal"},
		{"bad kv", "scenario a\nphase p 1\narrivals poisson rate\n", "not key=value"},
		{"dup kv", "scenario a\nphase p 1\narrivals poisson rate=1 rate=2\n", "duplicate key"},
		{"kv not number", "scenario a\nphase p 1\narrivals poisson rate=fast\n", "not a number"},
		{"unknown directive", "scenario a\nspeed 9\n", "unknown directive"},
		{"peak rate", "scenario a\nphase p 9\narrivals poisson rate=1e6\nholding exp mean=1\nevent step at=1 mult=1e6\n", "peak rate"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.spec)
		if err == nil {
			t.Errorf("%s: Parse accepted a bad spec", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestTractableAndEnforceable(t *testing.T) {
	s, err := Parse(goodSpec)
	if err != nil {
		t.Fatal(err)
	}
	if mean, ok := s.Phases[0].Tractable(); !ok || mean != 20 {
		t.Fatalf("steady phase: Tractable = %g, %v; want 20, true", mean, ok)
	}
	if _, ok := s.Phases[1].Tractable(); ok {
		t.Fatal("storm phase (events) should not be tractable")
	}
	if _, ok := s.Phases[2].Tractable(); ok {
		t.Fatal("gamma phase should not be tractable")
	}
	enf := s.Enforceable()
	if !enf[0] || enf[1] || enf[2] {
		t.Fatalf("Enforceable = %v, want [true false false]", enf)
	}
	if _, ok := s.Stationary(); ok {
		t.Fatal("demo scenario should not be stationary")
	}

	flat := `scenario flat
prefill 12
warmup 1
phase a 5
arrivals poisson rate=12
holding exp mean=1
phase b 5
arrivals poisson rate=12
holding exp mean=1
`
	fs, err := Parse(flat)
	if err != nil {
		t.Fatal(err)
	}
	if mean, ok := fs.Stationary(); !ok || mean != 12 {
		t.Fatalf("flat scenario: Stationary = %g, %v; want 12, true", mean, ok)
	}
	// Mismatched prefill breaks enforceability of every phase.
	fs2, err := Parse(strings.Replace(flat, "prefill 12", "prefill 3", 1))
	if err != nil {
		t.Fatal(err)
	}
	if enf := fs2.Enforceable(); enf[0] || enf[1] {
		t.Fatalf("mis-prefilled scenario should not be enforceable: %v", enf)
	}
}

func TestEventMult(t *testing.T) {
	s, err := Parse(goodSpec)
	if err != nil {
		t.Fatal(err)
	}
	storm := &s.Phases[1] // starts at 10; flash [2,4) ×3, step at 6 ×0.5
	cases := []struct {
		t, want float64
	}{
		{10, 1}, {12, 3}, {13.9, 3}, {14, 1}, {16, 0.5}, {17.9, 0.5},
	}
	for _, tc := range cases {
		if got := storm.eventMult(tc.t); got != tc.want {
			t.Errorf("eventMult(%g) = %g, want %g", tc.t, got, tc.want)
		}
	}
	if e := storm.nextEdge(10); e != 12 {
		t.Fatalf("nextEdge(10) = %g, want 12", e)
	}
	if e := storm.nextEdge(12); e != 14 {
		t.Fatalf("nextEdge(12) = %g, want 14", e)
	}
	if e := storm.nextEdge(16.5); e != 18 {
		t.Fatalf("nextEdge(16.5) = %g, want phase end 18", e)
	}
}
