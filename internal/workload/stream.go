package workload

import (
	"fmt"
	"math"

	"beqos/internal/rng"
)

// modStreamIndex derives the modulation substream (MMPP state machine and
// class picks) from the base seed. Keeping modulation draws off the
// primary source means adding burstiness or classes to a spec never
// perturbs the primary wait/hold sequence — and a plain Poisson spec
// draws from the primary source in exactly the order the hardwired
// loadgen pump did: prefill holds, then wait, hold, wait, hold, …
const modStreamIndex = 0x5ce6e5

// Flow is one generated arrival record: a complete, pre-drawn flow.
type Flow struct {
	// At is the absolute arrival time (0 for prefill flows).
	At float64
	// Hold is the flow's holding time, drawn from the phase's
	// distribution.
	Hold float64
	// Class indexes Scenario.Classes (0 when the scenario has none).
	Class int
	// Phase indexes Scenario.Phases.
	Phase int
}

// String renders the record with full float precision — the golden-trace
// format determinism tests byte-compare across consumers.
func (f Flow) String() string {
	return fmt.Sprintf("%.17g %.17g %d %d", f.At, f.Hold, f.Class, f.Phase)
}

// Stream generates a scenario's arrival records in time order. It owns
// all random state, so any two consumers pulling from equal-seeded
// streams see byte-identical records regardless of what they do between
// pulls.
type Stream struct {
	scn *Scenario
	src *rng.Source // primary: inter-arrival waits, thinning, holds
	mod *rng.Source // modulation: MMPP state machine, class picks

	t         float64
	phase     int
	prefill   int
	mmppHigh  bool
	mmppUntil float64
	done      bool
}

// Stream instantiates the scenario's arrival stream for one run. The
// primary source is seeded directly from (seed1, seed2); the modulation
// source from an rng.Substream derived off the same pair.
func (s *Scenario) Stream(seed1, seed2 uint64) *Stream {
	m1, m2 := rng.Substream(seed1, seed2, modStreamIndex)
	st := &Stream{
		scn:     s,
		src:     rng.New(seed1, seed2),
		mod:     rng.New(m1, m2),
		prefill: s.Prefill,
	}
	st.enterPhase(0)
	return st
}

// Next returns the next arrival record, or ok=false when the scenario
// horizon is exhausted. Prefill flows come first, all at t=0, drawn from
// phase 0's class mixture and holding distribution.
func (st *Stream) Next() (Flow, bool) {
	if st.done {
		return Flow{}, false
	}
	if st.prefill > 0 {
		st.prefill--
		f := Flow{At: 0, Phase: 0}
		f.Class = st.pickClass()
		f.Hold = st.hold(0)
		return f, true
	}
	at, ok := st.nextArrival()
	if !ok {
		st.done = true
		return Flow{}, false
	}
	f := Flow{At: at, Phase: st.phase}
	f.Class = st.pickClass()
	f.Hold = st.hold(st.phase)
	return f, true
}

// enterPhase positions the generator at the start of phase i and
// initializes its modulation state.
func (st *Stream) enterPhase(i int) {
	st.phase = i
	if i >= len(st.scn.Phases) {
		return
	}
	ph := &st.scn.Phases[i]
	st.t = ph.Start
	if ph.Arrivals.Kind == "mmpp" {
		// Equal sojourn means ⇒ stationary state split is 1/2.
		st.mmppHigh = st.mod.Float64() < 0.5
		st.mmppUntil = st.t + st.mod.Exp(ph.Arrivals.Sojourn)
	}
}

// nextArrival advances the arrival process to the next arrival instant.
//
// Poisson/MMPP phases generate against a piecewise-constant rate
// envelope (phase boundaries, event edges, MMPP state switches): within
// a segment the process is homogeneous Poisson, and by memorylessness a
// wait that crosses a boundary is discarded and redrawn at the new rate
// — exact, not an approximation. Sine modulation is applied by
// Lewis–Shedler thinning against the segment's majorant rate·(1+depth).
//
// Gamma phases are renewal processes: each inter-arrival is a Gamma
// variate with shape 1/cv² and mean 1/rate. A renewal crossing the phase
// end is discarded (the residual does not carry into the next phase).
func (st *Stream) nextArrival() (float64, bool) {
	scn := st.scn
	for st.phase < len(scn.Phases) {
		ph := &scn.Phases[st.phase]
		end := ph.Start + ph.Duration
		if ph.Arrivals.Kind == "gamma" {
			shape := 1 / (ph.Arrivals.CV * ph.Arrivals.CV)
			scale := 1 / (ph.Arrivals.Rate * shape)
			w := st.src.Gamma(shape, scale)
			if st.t+w > end {
				st.enterPhase(st.phase + 1)
				continue
			}
			if st.t+w == st.t {
				// A draw too small to advance the clock (possible for
				// extreme low shapes); redraw rather than emit a stuck
				// arrival sequence.
				continue
			}
			st.t += w
			return st.t, true
		}
		rate := st.envelopeRate(ph)
		maj := rate
		if ph.Sine != nil {
			maj *= 1 + ph.Sine.Depth
		}
		segEnd := st.segmentEnd(ph, end)
		w := st.src.Exp(1 / maj)
		if st.t+w > segEnd {
			st.t = segEnd
			if segEnd >= end {
				st.enterPhase(st.phase + 1)
			} else if ph.Arrivals.Kind == "mmpp" && segEnd == st.mmppUntil {
				st.mmppHigh = !st.mmppHigh
				st.mmppUntil = st.t + st.mod.Exp(ph.Arrivals.Sojourn)
			}
			continue
		}
		st.t += w
		if ph.Sine != nil {
			accept := (1 + ph.Sine.Depth*math.Sin(2*math.Pi*(st.t-ph.Start)/ph.Sine.Period)) / (1 + ph.Sine.Depth)
			if st.src.Float64() > accept {
				continue
			}
		}
		return st.t, true
	}
	return 0, false
}

// envelopeRate returns the piecewise-constant rate in effect at st.t:
// the phase rate (or the current MMPP state rate) times any active event
// multipliers.
func (st *Stream) envelopeRate(ph *Phase) float64 {
	rate := ph.Arrivals.Rate
	if ph.Arrivals.Kind == "mmpp" {
		low := 2 * ph.Arrivals.Rate / (1 + ph.Arrivals.Burst)
		if st.mmppHigh {
			rate = ph.Arrivals.Burst * low
		} else {
			rate = low
		}
	}
	return rate * ph.eventMult(st.t)
}

// segmentEnd returns the end of the homogeneous segment containing st.t:
// the earliest of the phase end, the next event edge, and (for MMPP) the
// next state switch.
func (st *Stream) segmentEnd(ph *Phase, end float64) float64 {
	seg := ph.nextEdge(st.t)
	if seg > end {
		seg = end
	}
	if ph.Arrivals.Kind == "mmpp" && st.mmppUntil < seg {
		seg = st.mmppUntil
	}
	return seg
}

// pickClass draws a class index from the scenario mixture (modulation
// source; no draw for classless scenarios).
func (st *Stream) pickClass() int {
	cs := st.scn.Classes
	if len(cs) == 0 {
		return 0
	}
	u := st.mod.Float64()
	for i := range cs {
		u -= cs[i].Weight
		if u < 0 {
			return i
		}
	}
	return len(cs) - 1
}

// hold draws a holding time from the phase's distribution (primary
// source).
func (st *Stream) hold(phase int) float64 {
	h := &st.scn.Phases[phase].Holding
	switch h.Kind {
	case "pareto":
		return st.src.Pareto(h.scale, h.Shape)
	case "lognormal":
		return st.src.LogNormal(h.mu, h.Sigma)
	default:
		return st.src.Exp(h.Mean)
	}
}
