package workload

import (
	"math"
	"strings"
	"testing"

	"beqos/internal/rng"
)

// trace pulls every record from a fresh stream and renders the golden
// format.
func trace(t *testing.T, spec string, seed1, seed2 uint64) (string, []Flow) {
	t.Helper()
	s, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	st := s.Stream(seed1, seed2)
	var b strings.Builder
	var flows []Flow
	for {
		f, ok := st.Next()
		if !ok {
			break
		}
		b.WriteString(f.String())
		b.WriteByte('\n')
		flows = append(flows, f)
	}
	return b.String(), flows
}

func TestStreamDeterministic(t *testing.T) {
	a, _ := trace(t, goodSpec, 7, 11)
	b, _ := trace(t, goodSpec, 7, 11)
	if a != b {
		t.Fatal("same spec + seed produced different traces")
	}
	c, _ := trace(t, goodSpec, 8, 11)
	if a == c {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestStreamInvariants(t *testing.T) {
	s, err := Parse(goodSpec)
	if err != nil {
		t.Fatal(err)
	}
	_, flows := trace(t, goodSpec, 3, 9)
	if len(flows) < s.Prefill {
		t.Fatalf("only %d records", len(flows))
	}
	for i, f := range flows {
		if i < s.Prefill {
			if f.At != 0 || f.Phase != 0 {
				t.Fatalf("prefill record %d not at t=0 phase 0: %+v", i, f)
			}
		}
		if i > 0 && f.At < flows[i-1].At {
			t.Fatalf("records out of order at %d: %g < %g", i, f.At, flows[i-1].At)
		}
		if f.At > s.Duration() {
			t.Fatalf("record %d past horizon: %g > %g", i, f.At, s.Duration())
		}
		if !(f.Hold > 0) {
			t.Fatalf("record %d non-positive hold %g", i, f.Hold)
		}
		if f.Class < 0 || f.Class >= len(s.Classes) {
			t.Fatalf("record %d class %d out of range", i, f.Class)
		}
		if want := s.PhaseAt(f.At); f.Phase != want && f.At != s.Phases[f.Phase].Start+s.Phases[f.Phase].Duration {
			t.Fatalf("record %d tagged phase %d, PhaseAt says %d (t=%g)", i, f.Phase, want, f.At)
		}
	}
	// Exhausted streams stay exhausted.
	st := s.Stream(3, 9)
	for {
		if _, ok := st.Next(); !ok {
			break
		}
	}
	if _, ok := st.Next(); ok {
		t.Fatal("stream produced a record after exhaustion")
	}
}

// TestStreamMatchesHardwiredDraws is the bit-for-bit contract: a plain
// Poisson/exp spec must consume the primary source in exactly the order
// the hardwired loadgen pump does — prefill holds first, then
// wait, hold, wait, hold, … — so the baseline spec reproduces the
// legacy harness statistics exactly.
func TestStreamMatchesHardwiredDraws(t *testing.T) {
	const spec = `scenario plain
prefill 5
phase only 12
arrivals poisson rate=3
holding exp mean=0.5
`
	_, flows := trace(t, spec, 42, 43)

	src := rng.New(42, 43)
	var want []Flow
	for i := 0; i < 5; i++ {
		want = append(want, Flow{At: 0, Hold: src.Exp(0.5)})
	}
	now := 0.0
	for {
		now += src.Exp(1.0 / 3)
		if now > 12 {
			break
		}
		want = append(want, Flow{At: now, Hold: src.Exp(0.5)})
	}
	if len(flows) != len(want) {
		t.Fatalf("stream emitted %d records, hardwired pump %d", len(flows), len(want))
	}
	for i := range want {
		if flows[i] != want[i] {
			t.Fatalf("record %d: stream %+v, hardwired %+v", i, flows[i], want[i])
		}
	}
}

// countIn counts arrivals (non-prefill records) in [lo, hi).
func countIn(flows []Flow, lo, hi float64) int {
	n := 0
	for _, f := range flows {
		if f.At > 0 && f.At >= lo && f.At < hi {
			n++
		}
	}
	return n
}

func TestStreamRates(t *testing.T) {
	// Long single-phase runs: empirical arrival rates must match the
	// declared means for every process, and event windows must scale them.
	const T = 2000.0
	cases := []struct {
		name, body string
		lo, hi     float64
		wantRate   float64
	}{
		{"poisson", "arrivals poisson rate=5\nholding exp mean=1\n", 0, T, 5},
		{"mmpp mean", "arrivals mmpp rate=5 burst=6 sojourn=3\nholding exp mean=1\n", 0, T, 5},
		{"gamma mean", "arrivals gamma rate=5 cv=2.5\nholding exp mean=1\n", 0, T, 5},
		{"sine mean", "arrivals poisson rate=5\nholding exp mean=1\nevent sine period=40 depth=0.8\n", 0, T, 5},
		{"flash window", "arrivals poisson rate=2\nholding exp mean=1\nevent flash at=500 mult=8 width=1000\n", 500, 1500, 16},
		{"step after", "arrivals poisson rate=2\nholding exp mean=1\nevent step at=1000 mult=3\n", 1000, 2000, 6},
	}
	for _, tc := range cases {
		spec := "scenario r\nphase p 2000\n" + tc.body
		_, flows := trace(t, spec, 17, 23)
		n := countIn(flows, tc.lo, tc.hi)
		mean := tc.wantRate * (tc.hi - tc.lo)
		// Poisson-ish counts: allow 5 standard deviations.
		if d := math.Abs(float64(n) - mean); d > 5*math.Sqrt(mean)+5 {
			t.Errorf("%s: %d arrivals in [%g,%g), want ≈ %g", tc.name, n, tc.lo, tc.hi, mean)
		}
	}
}

func TestStreamGammaCV(t *testing.T) {
	const spec = `scenario g
phase p 4000
arrivals gamma rate=5 cv=2
holding exp mean=1
`
	_, flows := trace(t, spec, 5, 6)
	var gaps []float64
	for i := 1; i < len(flows); i++ {
		gaps = append(gaps, flows[i].At-flows[i-1].At)
	}
	var sum, sq float64
	for _, g := range gaps {
		sum += g
	}
	mean := sum / float64(len(gaps))
	for _, g := range gaps {
		sq += (g - mean) * (g - mean)
	}
	cv := math.Sqrt(sq/float64(len(gaps)-1)) / mean
	if math.Abs(cv-2) > 0.3 {
		t.Fatalf("gamma inter-arrival CV = %g, want ≈ 2", cv)
	}
	if math.Abs(mean-0.2) > 0.02 {
		t.Fatalf("gamma mean inter-arrival = %g, want ≈ 0.2", mean)
	}
}

func TestStreamMMPPOverdispersed(t *testing.T) {
	// An MMPP with strong burstiness must show an index of dispersion of
	// counts well above the Poisson value 1 at window ≈ sojourn scale.
	gen := func(body string) []Flow {
		_, flows := trace(t, "scenario b\nphase p 4000\n"+body+"holding exp mean=1\n", 29, 31)
		return flows
	}
	idc := func(flows []Flow, win float64) float64 {
		var counts []float64
		for lo := 0.0; lo+win <= 4000; lo += win {
			counts = append(counts, float64(countIn(flows, lo, lo+win)))
		}
		var sum, sq float64
		for _, c := range counts {
			sum += c
		}
		m := sum / float64(len(counts))
		for _, c := range counts {
			sq += (c - m) * (c - m)
		}
		return sq / float64(len(counts)-1) / m
	}
	bursty := idc(gen("arrivals mmpp rate=5 burst=8 sojourn=4\n"), 4)
	plain := idc(gen("arrivals poisson rate=5\n"), 4)
	if bursty < 2 {
		t.Fatalf("MMPP index of dispersion %g, want ≫ 1", bursty)
	}
	if plain > 1.5 {
		t.Fatalf("Poisson index of dispersion %g, want ≈ 1", plain)
	}
}

func TestStreamHeavyTailMeans(t *testing.T) {
	// M/G/∞ insensitivity leans on E[hold]; the samplers must hit their
	// declared means.
	cases := []struct {
		name, holding string
	}{
		{"pareto", "holding pareto mean=2 shape=2.5"},
		{"lognormal", "holding lognormal mean=2 sigma=1"},
		{"exp", "holding exp mean=2"},
	}
	for _, tc := range cases {
		spec := "scenario h\nphase p 6000\narrivals poisson rate=5\n" + tc.holding + "\n"
		_, flows := trace(t, spec, 101, 103)
		var sum float64
		for _, f := range flows {
			sum += f.Hold
		}
		mean := sum / float64(len(flows))
		if math.Abs(mean-2) > 0.25 {
			t.Errorf("%s: empirical mean hold %g, want ≈ 2 (%d draws)", tc.name, mean, len(flows))
		}
	}
}

func TestStreamClassMixture(t *testing.T) {
	const spec = `scenario m
class a weight=1
class b weight=3
phase p 3000
arrivals poisson rate=5
holding exp mean=1
`
	_, flows := trace(t, spec, 71, 73)
	counts := map[int]int{}
	for _, f := range flows {
		counts[f.Class]++
	}
	total := float64(len(flows))
	if frac := float64(counts[1]) / total; math.Abs(frac-0.75) > 0.03 {
		t.Fatalf("class b fraction %g, want ≈ 0.75", frac)
	}
	// Adding classes must not perturb the primary wait/hold sequence:
	// the classless variant's (At, Hold) pairs are identical.
	classless := "scenario m\nphase p 3000\narrivals poisson rate=5\nholding exp mean=1\n"
	_, plain := trace(t, classless, 71, 73)
	if len(plain) != len(flows) {
		t.Fatalf("class mixture changed the arrival count: %d vs %d", len(flows), len(plain))
	}
	for i := range plain {
		if plain[i].At != flows[i].At || plain[i].Hold != flows[i].Hold {
			t.Fatalf("class mixture perturbed record %d: %+v vs %+v", i, flows[i], plain[i])
		}
	}
}
