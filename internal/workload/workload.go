// Package workload is the declarative scenario plane: a small text spec
// format describing named traffic scenarios — phases with per-phase
// arrival processes (Poisson, MMPP, Gamma renewal), holding-time
// distributions (exponential, Pareto, lognormal), flow-class mixtures,
// and events (flash crowd, rate step, diurnal sine) — compiled into a
// deterministic arrival stream that both the virtual-time simulator
// (internal/sim) and the live load harness (internal/loadgen) consume.
//
// The paper's best-effort/reservation comparison rests on a postulated
// stationary load distribution; this package supplies the non-stationary
// and bursty traffic (after Fayolle et al.'s best-effort traffic-class
// modeling) that the admission planes are exercised against.
package workload

import (
	"fmt"
	"math"
)

// Structural bounds enforced by Parse. They keep pathological specs (from
// fuzzing or typos) from compiling into streams that would effectively
// never terminate.
const (
	// MaxPhases bounds the number of phases in a scenario.
	MaxPhases = 64
	// MaxClasses bounds the number of flow classes in a scenario.
	MaxClasses = 16
	// MaxEvents bounds the number of events attached to one phase.
	MaxEvents = 16
	// MaxPrefill bounds the prefill population.
	MaxPrefill = 1 << 20
	// MaxRate bounds any arrival rate, including event-multiplied peaks.
	MaxRate = 1e9
	// MaxDuration bounds any single phase duration (and hence, with
	// MaxPhases, the scenario horizon).
	MaxDuration = 1e9
	// MaxTier is the highest admission class tier a flow class may carry
	// (the resv wire protocol's 2-bit class field).
	MaxTier = 3
	// MaxPhaseArrivals bounds a phase's expected arrival count
	// (peak rate × duration). Beyond ~1e8 the inter-arrival waits fall
	// under the float64 resolution of the absolute clock and the stream
	// would stop advancing.
	MaxPhaseArrivals = 1e8
	// MaxMMPPSwitches bounds a phase's expected MMPP state switches
	// (duration / sojourn), so generation cost stays proportional to the
	// arrival count.
	MaxMMPPSwitches = 1e7
)

// Scenario is a parsed, validated workload specification. It is immutable
// after Parse; per-run state lives in the Stream it instantiates.
type Scenario struct {
	// Name is the scenario's declared name.
	Name string
	// Prefill is the number of flows injected at t=0 (before any
	// arrival-process draws), used to start a run at its stationary
	// population instead of empty.
	Prefill int
	// Warmup is the measurement warmup prefix consumers should exclude.
	Warmup float64
	// Classes is the flow-class mixture (weights normalized to sum to 1).
	// Empty means a single implicit class.
	Classes []Class
	// Phases are the scenario's phases in time order; Phase.Start is
	// computed by Parse.
	Phases []Phase

	total float64
}

// Class is one entry of a scenario's flow-class mixture.
type Class struct {
	// Name is the class's declared name.
	Name string
	// Weight is the normalized probability an arrival belongs to this
	// class.
	Weight float64
	// Demand scales the class's capacity demand relative to the base flow.
	Demand float64
	// Tier is the admission class tier carried on the wire (0 = highest
	// priority under tiered policies).
	Tier uint8
}

// Phase is one contiguous segment of a scenario.
type Phase struct {
	// Name is the phase's declared name.
	Name string
	// Start is the phase's absolute start time (computed by Parse).
	Start float64
	// Duration is the phase's length.
	Duration float64
	// Arrivals is the phase's arrival process.
	Arrivals ArrivalSpec
	// Holding is the phase's holding-time distribution.
	Holding HoldSpec
	// Events are the phase's rate events (step, flash); the optional
	// sine modulation is in Sine.
	Events []Event
	// Sine is the phase's diurnal sine modulation, if any.
	Sine *Event

	// edges are the sorted, deduplicated phase-relative event boundaries
	// (step onsets, flash onsets and offsets) used for piecewise-constant
	// rate generation.
	edges []float64
}

// ArrivalSpec describes a phase's arrival process.
type ArrivalSpec struct {
	// Kind is "poisson", "mmpp", or "gamma".
	Kind string
	// Rate is the mean arrival rate (flows per unit virtual time). For
	// MMPP and Gamma it is the long-run mean rate.
	Rate float64
	// Burst is the MMPP high/low rate ratio (≥ 1; 1 degenerates to
	// Poisson). With equal sojourn means the two state rates are
	// 2·Rate/(1+Burst) and Burst·2·Rate/(1+Burst).
	Burst float64
	// Sojourn is the MMPP mean sojourn time in each state.
	Sojourn float64
	// CV is the Gamma renewal process's target coefficient of variation
	// of inter-arrival times (1 degenerates to Poisson; >1 is burstier).
	CV float64
}

// HoldSpec describes a phase's holding-time distribution.
type HoldSpec struct {
	// Kind is "exp", "pareto", or "lognormal".
	Kind string
	// Mean is the distribution's mean holding time.
	Mean float64
	// Shape is the Pareto tail index (must exceed 1 so the mean is
	// bounded).
	Shape float64
	// Sigma is the lognormal log-scale deviation.
	Sigma float64

	// scale is the Pareto scale x_m = Mean·(Shape-1)/Shape.
	scale float64
	// mu is the lognormal location ln(Mean) - Sigma²/2.
	mu float64
}

// Event is a rate event inside a phase. Times are phase-relative.
type Event struct {
	// Kind is "step", "flash", or "sine".
	Kind string
	// At is the onset offset from the phase start (step, flash).
	At float64
	// Mult multiplies the phase rate from the onset on (step) or for the
	// window [At, At+Width) (flash).
	Mult float64
	// Width is the flash crowd's window length.
	Width float64
	// Period is the sine modulation period.
	Period float64
	// Depth is the sine modulation depth d ∈ [0, 1): the instantaneous
	// rate is rate·(1 + d·sin(2πt/Period)).
	Depth float64
}

// Duration returns the scenario's total horizon (the sum of phase
// durations).
func (s *Scenario) Duration() float64 { return s.total }

// PhaseAt returns the index of the phase containing time t. Times at or
// past the end map to the last phase; negative times to the first.
func (s *Scenario) PhaseAt(t float64) int {
	for i := len(s.Phases) - 1; i > 0; i-- {
		if t >= s.Phases[i].Start {
			return i
		}
	}
	return 0
}

// MeanHold returns the holding distribution's mean.
func (h HoldSpec) MeanHold() float64 { return h.Mean }

// Tractable reports the phase's stationary offered mean when the phase is
// analytically tractable as an M/G/∞ segment: Poisson arrivals with no
// rate events. By M/G/∞ insensitivity the offered population depends on
// the holding distribution only through its mean, so the offered mean is
// Rate·E[hold] for any of the holding kinds.
func (p *Phase) Tractable() (mean float64, ok bool) {
	if p.Arrivals.Kind != "poisson" || len(p.Events) > 0 || p.Sine != nil {
		return 0, false
	}
	return p.Arrivals.Rate * p.Holding.Mean, true
}

// Enforceable reports, per phase, whether a live-harness cross-check
// against the stationary model may be enforced at full confidence. A
// phase is enforceable when it is tractable with exponential holds AND
// the population entering it is already stationary at the same mean:
// phase 0 needs Prefill == round(mean); a later phase needs the previous
// phase enforceable at identical rate and hold mean (so no transient is
// in flight at the boundary).
func (s *Scenario) Enforceable() []bool {
	enf := make([]bool, len(s.Phases))
	for i := range s.Phases {
		p := &s.Phases[i]
		mean, ok := p.Tractable()
		if !ok || p.Holding.Kind != "exp" {
			continue
		}
		if i == 0 {
			enf[0] = s.Prefill == int(math.Round(mean))
			continue
		}
		prev := &s.Phases[i-1]
		enf[i] = enf[i-1] &&
			prev.Arrivals.Rate == p.Arrivals.Rate &&
			prev.Holding.Mean == p.Holding.Mean
	}
	return enf
}

// Stationary reports the scenario's single stationary offered mean when
// every phase is enforceable (see Enforceable) — i.e. the whole run is
// one stationary M/M/∞ segment and classic whole-run cross-checks apply.
func (s *Scenario) Stationary() (mean float64, ok bool) {
	enf := s.Enforceable()
	for _, e := range enf {
		if !e {
			return 0, false
		}
	}
	m, _ := s.Phases[0].Tractable()
	return m, true
}

// validate runs the whole-scenario checks Parse defers until the spec is
// fully read, and computes the derived fields (phase starts, holding
// parameters, event edges).
func (s *Scenario) validate() error {
	if len(s.Phases) == 0 {
		return fmt.Errorf("workload: scenario %q declares no phases", s.Name)
	}
	start := 0.0
	for i := range s.Phases {
		p := &s.Phases[i]
		if p.Arrivals.Kind == "" {
			return fmt.Errorf("workload: phase %q has no arrivals directive", p.Name)
		}
		if p.Holding.Kind == "" {
			return fmt.Errorf("workload: phase %q has no holding directive", p.Name)
		}
		if p.Arrivals.Kind == "gamma" && (len(p.Events) > 0 || p.Sine != nil) {
			return fmt.Errorf("workload: phase %q combines gamma renewal arrivals with events (events need a rate envelope; use poisson or mmpp)", p.Name)
		}
		// Peak rate including event multipliers must stay bounded.
		peak := p.Arrivals.Rate
		for _, ev := range p.Events {
			peak *= math.Max(ev.Mult, 1)
		}
		if p.Sine != nil {
			peak *= 1 + p.Sine.Depth
		}
		if peak > MaxRate {
			return fmt.Errorf("workload: phase %q peak rate %g exceeds %g", p.Name, peak, float64(MaxRate))
		}
		if peak*p.Duration > MaxPhaseArrivals {
			return fmt.Errorf("workload: phase %q expects %g arrivals (peak rate × duration); cap %g", p.Name, peak*p.Duration, float64(MaxPhaseArrivals))
		}
		if p.Arrivals.Kind == "mmpp" && p.Duration/p.Arrivals.Sojourn > MaxMMPPSwitches {
			return fmt.Errorf("workload: phase %q expects %g MMPP state switches (duration/sojourn); cap %g", p.Name, p.Duration/p.Arrivals.Sojourn, float64(MaxMMPPSwitches))
		}
		p.Start = start
		start += p.Duration
		p.finalize()
	}
	s.total = start
	if !(s.total > 0) || s.total > MaxPhases*MaxDuration {
		return fmt.Errorf("workload: scenario duration %g out of range", s.total)
	}
	if s.Warmup >= s.total {
		return fmt.Errorf("workload: warmup %g is not shorter than the scenario duration %g", s.Warmup, s.total)
	}
	// Normalize class weights.
	if len(s.Classes) > 0 {
		sum := 0.0
		for i := range s.Classes {
			sum += s.Classes[i].Weight
		}
		for i := range s.Classes {
			s.Classes[i].Weight /= sum
		}
	}
	return nil
}

// finalize computes a phase's derived sampling parameters and event
// boundary table.
func (p *Phase) finalize() {
	h := &p.Holding
	switch h.Kind {
	case "pareto":
		h.scale = h.Mean * (h.Shape - 1) / h.Shape
	case "lognormal":
		h.mu = math.Log(h.Mean) - h.Sigma*h.Sigma/2
	}
	seen := map[float64]bool{}
	p.edges = p.edges[:0]
	add := func(t float64) {
		if t > 0 && t < p.Duration && !seen[t] {
			seen[t] = true
			p.edges = append(p.edges, t)
		}
	}
	for _, ev := range p.Events {
		add(ev.At)
		if ev.Kind == "flash" {
			add(ev.At + ev.Width)
		}
	}
	// Insertion sort: MaxEvents is tiny.
	for i := 1; i < len(p.edges); i++ {
		for j := i; j > 0 && p.edges[j] < p.edges[j-1]; j-- {
			p.edges[j], p.edges[j-1] = p.edges[j-1], p.edges[j]
		}
	}
}

// eventMult returns the product of the phase's step/flash multipliers
// active at absolute time t.
func (p *Phase) eventMult(t float64) float64 {
	rel := t - p.Start
	m := 1.0
	for _, ev := range p.Events {
		switch ev.Kind {
		case "step":
			if rel >= ev.At {
				m *= ev.Mult
			}
		case "flash":
			if rel >= ev.At && rel < ev.At+ev.Width {
				m *= ev.Mult
			}
		}
	}
	return m
}

// nextEdge returns the earliest absolute event boundary strictly after t,
// or the phase end if none remains.
func (p *Phase) nextEdge(t float64) float64 {
	for _, e := range p.edges {
		if p.Start+e > t {
			return p.Start + e
		}
	}
	return p.Start + p.Duration
}
