package beqos

import (
	"fmt"

	"beqos/internal/dist"
	"beqos/internal/utility"
)

// MixtureLoad returns a convex combination of loads — the paper's §5
// nonstationary-load extension (e.g. diurnal alternation of regimes). The
// mixture inherits the asymptotics of its heaviest-tailed component.
func MixtureLoad(loads []Load, weights []float64) (Load, error) {
	comps := make([]dist.Discrete, len(loads))
	for i, l := range loads {
		if l.d == nil {
			return Load{}, fmt.Errorf("beqos: mixture load component %d is a zero value", i)
		}
		comps[i] = l.d
	}
	m, err := dist.NewMixture(comps, weights)
	if err != nil {
		return Load{}, err
	}
	return Load{d: m}, nil
}

// UtilityClass is one application class in a heterogeneous population.
type UtilityClass struct {
	// Util is the class's utility function.
	Util Utility
	// Weight is the class's share of flows (normalized internally).
	Weight float64
	// Demand scales bandwidth needs: the class evaluates its utility at
	// share/Demand. Zero defaults to 1.
	Demand float64
}

// MixtureUtility returns the expected utility of a random flow from a
// heterogeneous population — the paper's §5 heterogeneous-flows extension.
// The result is itself a valid utility function, so every model quantity
// applies unchanged.
func MixtureUtility(classes []UtilityClass) (Utility, error) {
	comps := make([]utility.Component, len(classes))
	for i, c := range classes {
		if c.Util.f == nil {
			return Utility{}, fmt.Errorf("beqos: mixture utility class %d is a zero value", i)
		}
		comps[i] = utility.Component{Fn: c.Util.f, Weight: c.Weight, Demand: c.Demand}
	}
	m, err := utility.NewMixture(comps)
	if err != nil {
		return Utility{}, err
	}
	return Utility{f: m}, nil
}
