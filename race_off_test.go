//go:build !race

package beqos_test

// raceEnabled reports that this binary was built with -race; measurement
// tests that depend on native execution speed skip themselves.
const raceEnabled = false
