package beqos_test

import (
	"context"
	"net"
	"testing"
	"time"

	"beqos"
)

// TestAdmissionRetryPolicyZeroValueBackoff is the regression test for the
// facade forwarding a zero Multiplier into the transport's retry
// validation (which requires ≥ 1): a caller setting only MaxAttempts and
// BaseDelay must get working retries, not an "invalid retry policy" error.
func TestAdmissionRetryPolicyZeroValueBackoff(t *testing.T) {
	srv, err := beqos.NewAdmissionServer(2, beqos.RigidUtility())
	if err != nil {
		t.Fatal(err)
	}
	cs, cc := net.Pipe()
	go srv.HandleConn(cs)
	client := beqos.NewAdmissionClient(cc)
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	policy := beqos.AdmissionRetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond}
	granted, share, retries, err := client.ReserveWithRetry(ctx, 1, 1, policy)
	if err != nil {
		t.Fatalf("zero-value backoff fields must default, got error: %v", err)
	}
	if !granted || share != 1 || retries != 0 {
		t.Fatalf("reserve: granted=%v share=%g retries=%d", granted, share, retries)
	}

	// The defaulted policy must also drive the denial path: with the link
	// full, both attempts are denied and the client reports retries, not
	// a validation error.
	for id := uint64(2); ; id++ {
		ok, _, err := client.Reserve(ctx, id, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	granted, _, retries, err = client.ReserveWithRetry(ctx, 100, 1, policy)
	if err != nil {
		t.Fatalf("retrying on a full link: %v", err)
	}
	if granted || retries != 1 {
		t.Fatalf("full link: granted=%v retries=%d, want denied after 1 retry", granted, retries)
	}
}
