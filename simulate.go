package beqos

import (
	"fmt"

	"beqos/internal/sim"
)

// Traffic describes the flow dynamics for a simulation.
type Traffic struct {
	arrivals sim.Arrivals
	holding  sim.Holding
}

// PoissonTraffic returns memoryless flow arrivals at the given rate with
// exponential holding times of the given mean (an M/M/∞-style offered
// load of rate·holdMean flows).
func PoissonTraffic(rate, holdMean float64) (Traffic, error) {
	a, err := sim.NewPoissonArrivals(rate)
	if err != nil {
		return Traffic{}, err
	}
	h, err := sim.NewExpHolding(holdMean)
	if err != nil {
		return Traffic{}, err
	}
	return Traffic{arrivals: a, holding: h}, nil
}

// SessionTraffic returns heavy-tailed session arrivals: sessions arrive at
// the given rate, each launching a Pareto(batchScale, batchShape) batch of
// flows with exponential holding times — a simple generator of the
// overdispersed loads the paper associates with self-similar traffic.
func SessionTraffic(rate, batchScale, batchShape, holdMean float64) (Traffic, error) {
	a, err := sim.NewSessionArrivals(rate, batchScale, batchShape)
	if err != nil {
		return Traffic{}, err
	}
	h, err := sim.NewExpHolding(holdMean)
	if err != nil {
		return Traffic{}, err
	}
	return Traffic{arrivals: a, holding: h}, nil
}

// SimConfig describes one flow-level simulation run.
type SimConfig struct {
	// Capacity is the link capacity C.
	Capacity float64
	// Util is the application utility.
	Util Utility
	// Traffic defines arrivals and holding times.
	Traffic Traffic
	// Reservations enables admission control at kmax(C); false simulates
	// the best-effort-only link.
	Reservations bool
	// Horizon and Warmup are simulated durations (warmup excluded from
	// statistics).
	Horizon, Warmup float64
	// Samples is the §5.1 S (0 = time-average scoring, 1 = arrival
	// snapshot, larger = worst of S samples).
	Samples int
	// Seed makes runs reproducible.
	Seed uint64
}

// SimResult reports a run's measurements.
type SimResult struct {
	// MeasuredLoad is the stationary occupancy distribution, usable
	// directly as a Load for the analytical model.
	MeasuredLoad Load
	// MeanOccupancy is its mean.
	MeanOccupancy float64
	// MeanUtility is the average per-flow utility.
	MeanUtility float64
	// BlockingRate is the per-attempt rejection rate (reservations only).
	BlockingRate float64
	// Flows, Admitted and Rejected count post-warmup flows.
	Flows, Admitted, Rejected int
}

// Simulate runs a flow-level simulation of one link.
func Simulate(cfg SimConfig) (SimResult, error) {
	if cfg.Util.f == nil {
		return SimResult{}, fmt.Errorf("beqos: SimConfig.Util must be constructed")
	}
	if cfg.Traffic.arrivals == nil || cfg.Traffic.holding == nil {
		return SimResult{}, fmt.Errorf("beqos: SimConfig.Traffic must be constructed")
	}
	policy := sim.BestEffort
	if cfg.Reservations {
		policy = sim.Reservation
	}
	res, err := sim.Run(sim.Config{
		Capacity: cfg.Capacity,
		Util:     cfg.Util.f,
		Policy:   policy,
		Arrivals: cfg.Traffic.arrivals,
		Holding:  cfg.Traffic.holding,
		Horizon:  cfg.Horizon,
		Warmup:   cfg.Warmup,
		Samples:  cfg.Samples,
		Seed1:    cfg.Seed,
		Seed2:    cfg.Seed ^ 0x9e3779b97f4a7c15,
	})
	if err != nil {
		return SimResult{}, err
	}
	out := SimResult{
		MeanOccupancy: res.AvgOccupancy,
		MeanUtility:   res.MeanUtility,
		BlockingRate:  res.BlockingRate,
		Flows:         res.Flows,
		Admitted:      res.Admitted,
		Rejected:      res.Rejected,
	}
	if res.Occupancy != nil {
		out.MeasuredLoad = Load{d: res.Occupancy}
	}
	return out, nil
}
